//! Beyond the paper: the hybrid-prefetcher shootout.
//!
//! The paper evaluates SHIFT, PIF, and next-line standalone; this driver
//! runs the composed designs of [`shift_core::hybrid`] through the same
//! machinery and reports them *next to* the paper's designs with the same
//! three columns the paper uses — miss coverage, overprediction/discard
//! traffic, and added storage — plus the speedup over the no-prefetch
//! baseline. A second scenario throttles SHIFT's history-port bandwidth and
//! records the coverage degradation under contention.
//!
//! Two properties are asserted downstream (bench references and CI):
//!
//! * at least one hybrid beats standalone SHIFT on coverage at
//!   equal-or-lower added storage, and
//! * throttling history bandwidth degrades coverage monotonically.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{Scale, WorkloadSpec};
use shift_types::AccessClass;

use crate::config::{CmpConfig, PrefetcherConfig};
use crate::experiments::performance_density::storage_of;
use crate::matrix::{RunHandle, RunMatrix};
use crate::results::geometric_mean;
use crate::store::RunOutcomes;

/// One design's row of the shootout table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HybridRow {
    /// Design label (e.g. `"SHIFT+NL"`).
    pub label: String,
    /// `true` for the composed designs, `false` for the paper's standalone
    /// suite.
    pub hybrid: bool,
    /// Mean miss coverage across workloads.
    pub coverage: f64,
    /// Mean overprediction (discarded prefetches / baseline misses).
    pub overprediction: f64,
    /// Mean discarded-prefetch LLC traffic as a fraction of demand traffic.
    pub discard_ratio: f64,
    /// Geometric-mean speedup over the no-prefetch baseline.
    pub speedup: f64,
    /// New SRAM the design adds to the chip, in KiB.
    pub storage_kib: f64,
}

/// One point of the degradation-under-contention sweep.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// History-port bandwidth: prefetch candidates per 64-access window.
    pub candidates_per_window: u32,
    /// Mean miss coverage across workloads at this bandwidth.
    pub coverage: f64,
}

/// The hybrid-shootout result: the comparison table plus the degradation
/// sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HybridShootoutResult {
    /// One row per design — the paper's standalone suite first, then the
    /// composed designs.
    pub rows: Vec<HybridRow>,
    /// Coverage under a throttled history port, in *descending* bandwidth
    /// order (the leftmost point is the least contended).
    pub degradation: Vec<DegradationPoint>,
}

impl HybridShootoutResult {
    /// The row with the given label.
    pub fn row(&self, label: &str) -> Option<&HybridRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// The hybrid rows only.
    pub fn hybrid_rows(&self) -> impl Iterator<Item = &HybridRow> {
        self.rows.iter().filter(|r| r.hybrid)
    }

    /// The best coverage win of any hybrid over standalone SHIFT *at
    /// equal-or-lower added storage* (positive when some hybrid wins both
    /// axes at once; the shootout's headline check).
    pub fn best_hybrid_coverage_win(&self) -> f64 {
        let Some(shift) = self.row("SHIFT") else {
            return f64::NEG_INFINITY;
        };
        self.hybrid_rows()
            .filter(|r| r.storage_kib <= shift.storage_kib + 1e-9)
            .map(|r| r.coverage - shift.coverage)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Number of adjacent degradation-sweep pairs where *lowering* the
    /// bandwidth *raised* coverage (beyond float noise) — zero when the
    /// coverage loss is monotone in contention.
    pub fn degradation_monotonicity_violations(&self) -> usize {
        self.degradation
            .windows(2)
            .filter(|w| w[1].coverage > w[0].coverage + 1e-9)
            .count()
    }

    /// Coverage lost between the widest and narrowest history port.
    pub fn degradation_span(&self) -> f64 {
        match (self.degradation.first(), self.degradation.last()) {
            (Some(first), Some(last)) => first.coverage - last.coverage,
            _ => 0.0,
        }
    }
}

impl fmt::Display for HybridShootoutResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Hybrid shootout: composed designs vs the paper's standalone suite"
        )?;
        writeln!(
            f,
            "{:<20}{:>10}{:>10}{:>10}{:>10}{:>12}",
            "design", "coverage", "overpred", "discard", "speedup", "SRAM (KiB)"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<20}{:>10}{:>10}{:>10}{:>10.3}{:>12.1}",
                row.label,
                super::pct(row.coverage),
                super::pct(row.overprediction),
                super::pct(row.discard_ratio),
                row.speedup,
                row.storage_kib,
            )?;
        }
        writeln!(f, "degradation under history-port contention:")?;
        for p in &self.degradation {
            writeln!(
                f,
                "  bw={:<6}{}",
                p.candidates_per_window,
                super::pct(p.coverage)
            )?;
        }
        Ok(())
    }
}

/// Runs the hybrid shootout with the default design list and bandwidth
/// sweep.
pub fn hybrid_shootout(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> HybridShootoutResult {
    let mut matrix = RunMatrix::new();
    let plan = HybridShootoutPlan::plan(&mut matrix, workloads, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned shootout: per workload, one baseline plus one run per design
/// and per throttled-bandwidth point.
#[derive(Clone, Debug)]
pub struct HybridShootoutPlan {
    designs: Vec<PrefetcherConfig>,
    bandwidths: Vec<u32>,
    cores: u16,
    /// Per workload: (baseline, per-design runs, per-bandwidth runs).
    rows: Vec<(RunHandle, Vec<RunHandle>, Vec<RunHandle>)>,
}

impl HybridShootoutPlan {
    /// The history-port bandwidths of the degradation sweep, in descending
    /// order (candidates per 64-access window).
    pub const BANDWIDTHS: [u32; 5] = [16, 8, 4, 2, 1];

    /// Plans the full shootout into `matrix`: the paper's standalone suite
    /// (next-line, PIF_32K, SHIFT), the hybrid suite, and the throttled-SHIFT
    /// sweep, sharing the per-workload baselines (and any runs other figures
    /// already planned) through the matrix's key deduplication.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty());
        let mut designs = vec![
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_virtualized(),
        ];
        designs.extend(PrefetcherConfig::hybrid_suite());
        let bandwidths = Self::BANDWIDTHS.to_vec();
        let rows = workloads
            .iter()
            .map(|workload| {
                let baseline =
                    matrix.standalone(workload, PrefetcherConfig::None, cores, scale, seed);
                let runs = designs
                    .iter()
                    .map(|&p| matrix.standalone(workload, p, cores, scale, seed))
                    .collect();
                let throttled = bandwidths
                    .iter()
                    .map(|&bw| {
                        matrix.standalone(
                            workload,
                            PrefetcherConfig::shift_throttled(bw),
                            cores,
                            scale,
                            seed,
                        )
                    })
                    .collect();
                (baseline, runs, throttled)
            })
            .collect();
        HybridShootoutPlan {
            designs,
            bandwidths,
            cores,
            rows,
        }
    }

    /// Derives the shootout result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> HybridShootoutResult {
        let llc_blocks = CmpConfig::micro13(self.cores, PrefetcherConfig::None)
            .llc
            .capacity_blocks();
        let rows = self
            .designs
            .iter()
            .enumerate()
            .map(|(i, design)| {
                let mut coverage = Vec::new();
                let mut overprediction = Vec::new();
                let mut discard = Vec::new();
                let mut speedups = Vec::new();
                for (baseline, runs, _) in &self.rows {
                    let run = &outcomes[runs[i]];
                    coverage.push(run.coverage.coverage());
                    overprediction.push(run.coverage.overprediction());
                    discard.push(run.llc_overhead_ratio(AccessClass::Discard));
                    speedups.push(run.speedup_over(&outcomes[*baseline]));
                }
                let n = coverage.len() as f64;
                HybridRow {
                    label: design.label(),
                    hybrid: matches!(
                        design,
                        PrefetcherConfig::ShiftNextLine { .. }
                            | PrefetcherConfig::GatedPif { .. }
                            | PrefetcherConfig::AdaptiveNlShift { .. }
                            | PrefetcherConfig::ThrottledShift { .. }
                    ),
                    coverage: coverage.iter().sum::<f64>() / n,
                    overprediction: overprediction.iter().sum::<f64>() / n,
                    discard_ratio: discard.iter().sum::<f64>() / n,
                    speedup: geometric_mean(&speedups),
                    storage_kib: storage_of(design, self.cores, llc_blocks)
                        .added_sram_kib(self.cores),
                }
            })
            .collect();
        let degradation = self
            .bandwidths
            .iter()
            .enumerate()
            .map(|(j, &bw)| {
                let coverages: Vec<f64> = self
                    .rows
                    .iter()
                    .map(|(_, _, throttled)| outcomes[throttled[j]].coverage.coverage())
                    .collect();
                DegradationPoint {
                    candidates_per_window: bw,
                    coverage: coverages.iter().sum::<f64>() / coverages.len() as f64,
                }
            })
            .collect();
        HybridShootoutResult { rows, degradation }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    fn shootout() -> HybridShootoutResult {
        hybrid_shootout(
            &[presets::tiny(), presets::web_frontend()],
            4,
            Scale::Test,
            0x60_1DEA,
        )
    }

    #[test]
    fn some_hybrid_beats_shift_coverage_at_equal_or_lower_storage() {
        let result = shootout();
        assert!(result.rows.len() >= 6);
        assert!(result.hybrid_rows().count() >= 3);
        let win = result.best_hybrid_coverage_win();
        assert!(
            win >= 0.0,
            "no hybrid beat standalone SHIFT at equal-or-lower storage (best win {win:.4})"
        );
    }

    #[test]
    fn throttling_history_bandwidth_degrades_coverage_monotonically() {
        let result = shootout();
        assert_eq!(
            result.degradation.len(),
            HybridShootoutPlan::BANDWIDTHS.len()
        );
        assert_eq!(
            result.degradation_monotonicity_violations(),
            0,
            "coverage rose as the port narrowed: {:?}",
            result.degradation
        );
        assert!(
            result.degradation_span() > 0.0,
            "narrowing the port to 1 candidate/window must lose coverage: {:?}",
            result.degradation
        );
    }

    #[test]
    fn display_includes_every_design_and_bandwidth_point() {
        let result = shootout();
        let text = result.to_string();
        for row in &result.rows {
            assert!(text.contains(&row.label), "missing {}", row.label);
        }
        assert!(text.contains("bw=1"));
    }

    #[test]
    fn shootout_shares_baselines_and_shift_runs_with_other_figures() {
        // Planning the shootout after a figure that already planned the
        // baseline and SHIFT runs must add only the shootout-specific keys.
        let workloads = [presets::tiny()];
        let mut matrix = RunMatrix::new();
        for w in &workloads {
            matrix.standalone(w, PrefetcherConfig::None, 4, Scale::Test, 7);
            matrix.standalone(w, PrefetcherConfig::shift_virtualized(), 4, Scale::Test, 7);
        }
        let before = matrix.len();
        HybridShootoutPlan::plan(&mut matrix, &workloads, 4, Scale::Test, 7);
        // 6 designs + 5 bandwidths + 1 baseline per workload, minus the 2
        // keys already planned.
        assert_eq!(matrix.len(), before + 6 + 5 + 1 - 2);
    }
}
