//! §5.7: power overhead of SHIFT's history and index activity.
//!
//! The paper's claim: the extra LLC data-array accesses (history log),
//! tag-array accesses (index updates), and NoC flit-hops together cost under
//! ≈150 mW on the 16-core CMP — negligible against tens of watts of cores.
//! Each [`PowerRow`] holds the per-workload [`PowerBreakdown`] (LLC data,
//! LLC tag, NoC, all in milliwatts) produced by [`PowerModel::nm40`].

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_metrics::{PowerBreakdown, PowerModel};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::PrefetcherConfig;
use crate::matrix::{RunHandle, RunMatrix};
use crate::store::RunOutcomes;

/// One workload's power overhead.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerRow {
    /// LLC + NoC power overhead breakdown.
    pub breakdown: PowerBreakdown,
}

/// The §5.7 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PowerOverheadResult {
    /// `(workload, power breakdown)` rows.
    pub rows: Vec<(String, PowerRow)>,
}

impl PowerOverheadResult {
    /// Worst-case (maximum) total overhead across workloads, in milliwatts.
    pub fn max_total_mw(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, r)| r.breakdown.total_mw())
            .fold(0.0, f64::max)
    }

    /// Average total overhead across workloads, in milliwatts.
    pub fn mean_total_mw(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.rows
                .iter()
                .map(|(_, r)| r.breakdown.total_mw())
                .sum::<f64>()
                / self.rows.len() as f64
        }
    }
}

impl fmt::Display for PowerOverheadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§5.7: SHIFT power overhead (16-core CMP)")?;
        writeln!(
            f,
            "{:<18}{:>12}{:>12}{:>10}{:>12}",
            "workload", "LLC data", "LLC tag", "NoC", "total"
        )?;
        for (name, row) in &self.rows {
            writeln!(
                f,
                "{:<18}{:>9.2} mW{:>9.2} mW{:>7.2} mW{:>9.2} mW",
                name,
                row.breakdown.llc_data_mw,
                row.breakdown.llc_tag_mw,
                row.breakdown.noc_mw,
                row.breakdown.total_mw()
            )?;
        }
        writeln!(f, "max total: {:.1} mW", self.max_total_mw())
    }
}

/// Runs the §5.7 power estimate: a virtualized SHIFT run per workload, with
/// the history/index/NoC activity converted to power by [`PowerModel`].
///
/// The per-workload runs are declared as one [`RunMatrix`] and executed in
/// parallel.
pub fn power_overhead(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> PowerOverheadResult {
    let mut matrix = RunMatrix::new();
    let plan = PowerOverheadPlan::plan(&mut matrix, workloads, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned §5.7 sweep: one virtualized-SHIFT run per workload (the same
/// runs Figures 8 and 9 use, so planning into a shared matrix costs nothing
/// extra).
#[derive(Clone, Debug)]
pub struct PowerOverheadPlan {
    workloads: Vec<String>,
    handles: Vec<RunHandle>,
}

impl PowerOverheadPlan {
    /// Plans the per-workload virtualized-SHIFT runs into `matrix`.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        let handles = workloads
            .iter()
            .map(|w| {
                matrix.standalone(w, PrefetcherConfig::shift_virtualized(), cores, scale, seed)
            })
            .collect();
        PowerOverheadPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            handles,
        }
    }

    /// Converts the executed runs' history/index/NoC activity to power via
    /// [`PowerModel::nm40`].
    pub fn collect(&self, outcomes: &RunOutcomes) -> PowerOverheadResult {
        let model = PowerModel::nm40();
        let rows = self
            .workloads
            .iter()
            .zip(&self.handles)
            .map(|(workload, &handle)| {
                let run = &outcomes[handle];
                let cycles = run.mean_cycles().max(1.0) as u64;
                let breakdown = model.overhead(
                    run.history_block_accesses,
                    run.index_accesses,
                    run.overhead_flit_hops,
                    cycles,
                );
                (workload.clone(), PowerRow { breakdown })
            })
            .collect();
        PowerOverheadResult { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn power_overhead_is_small() {
        let result = power_overhead(&[presets::tiny()], 4, Scale::Test, 13);
        assert_eq!(result.rows.len(), 1);
        let total = result.max_total_mw();
        assert!(total > 0.0, "history activity must consume some power");
        assert!(
            total < 300.0,
            "power overhead must stay small (got {total} mW)"
        );
        assert!(result.mean_total_mw() <= result.max_total_mw());
        assert!(!result.to_string().is_empty());
    }
}
