//! Figure 3: instruction stream commonality across cores.
//!
//! One core picked as the recorder logs its instruction-cache access stream
//! into a (large) history; every other core, upon referencing the head of a
//! recorded stream, replays the most recent occurrence and counts how many of
//! its subsequent accesses match the replayed stream. The paper finds that
//! more than 90 % of all instruction cache accesses fall within common
//! temporal streams.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use shift_cache::{LlcConfig, NucaLlc};
use shift_core::{InstructionPrefetcher, Shift, ShiftConfig};
use shift_trace::workload::WorkloadProgram;
use shift_trace::{CoreTraceGenerator, Scale, WorkloadSpec};
use shift_types::{BlockAddr, CoreId};

use crate::experiments::pct;
use crate::matrix::parallel_map;

/// Per-workload commonality result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CommonalityRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of instruction-cache accesses (from the non-recording cores)
    /// that fall within streams recorded by the single recording core.
    pub common_fraction: f64,
}

/// The Figure 3 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CommonalityResult {
    /// One row per workload.
    pub rows: Vec<CommonalityRow>,
}

impl CommonalityResult {
    /// Average commonality across workloads.
    pub fn mean(&self) -> f64 {
        if self.rows.is_empty() {
            0.0
        } else {
            self.rows.iter().map(|r| r.common_fraction).sum::<f64>() / self.rows.len() as f64
        }
    }
}

impl fmt::Display for CommonalityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: instruction cache accesses within common temporal streams"
        )?;
        for row in &self.rows {
            writeln!(f, "{:<18}{:>8}", row.workload, pct(row.common_fraction))?;
        }
        writeln!(f, "{:<18}{:>8}", "Average", pct(self.mean()))
    }
}

/// Runs the commonality study for each workload.
///
/// The recorder is core 0 (the paper observes no sensitivity to the choice);
/// `cores` cores run the workload, and the measurement covers
/// `scale.fetches_per_core()` accesses per core after an equally long
/// recording warm-up.
///
/// This is an opportunity study over raw trace streams, not `Simulation`
/// runs, so instead of a [`RunMatrix`](crate::matrix::RunMatrix) the
/// per-workload measurements fan out through the same worker pool via
/// [`parallel_map`].
pub fn commonality(
    workloads: &[WorkloadSpec],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> CommonalityResult {
    assert!(
        cores >= 2,
        "commonality needs a recorder and at least one replayer"
    );
    let rows = parallel_map(workloads, |w| CommonalityRow {
        workload: w.name.clone(),
        common_fraction: commonality_of_workload(w, cores, scale, seed),
    });
    CommonalityResult { rows }
}

fn commonality_of_workload(workload: &WorkloadSpec, cores: u16, scale: Scale, seed: u64) -> f64 {
    let program = WorkloadProgram::build(workload);
    let mut generators: Vec<CoreTraceGenerator> = CoreId::range(cores)
        .map(|c| CoreTraceGenerator::with_program(Arc::clone(&program), c, seed))
        .collect();

    // A dedicated, zero-latency SHIFT with a generous history serves as the
    // stream recorder/replayer for this opportunity study.
    let mut config = ShiftConfig::zero_latency_micro13(CoreId::new(0));
    config.history_records = 128 * 1024;
    config.index_entries = 64 * 1024;
    let mut shift = Shift::new(config, cores);
    let mut llc = NucaLlc::new(LlcConfig::micro13(cores as usize));

    let warmup = scale.warmup_fetches_per_core();
    let measured = scale.fetches_per_core();
    let mut common = 0u64;
    let mut total = 0u64;
    let mut scratch = Vec::new();

    for phase in 0..2 {
        let steps = if phase == 0 { warmup } else { measured };
        for _ in 0..steps {
            for (core_idx, generator) in generators.iter_mut().enumerate() {
                let core = CoreId::new(core_idx as u16);
                let block: BlockAddr = generator.next_fetch().block;
                if phase == 1 && core_idx != 0 {
                    total += 1;
                    if shift.covers(core, block) {
                        common += 1;
                    } else {
                        // Referencing the head of a recorded stream starts a
                        // replay of its most recent occurrence.
                        scratch.clear();
                        shift.on_access(core, block, false, &mut llc, &mut scratch);
                        if shift.covers(core, block) {
                            common += 1;
                        }
                    }
                }
                scratch.clear();
                shift.on_retire(core, block, &mut llc, &mut scratch);
            }
        }
    }

    if total == 0 {
        0.0
    } else {
        common as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn tiny_workload_shows_high_commonality() {
        let result = commonality(&[presets::tiny()], 4, Scale::Test, 5);
        assert_eq!(result.rows.len(), 1);
        let frac = result.rows[0].common_fraction;
        assert!(
            frac > 0.7,
            "cores running the same workload should share most streams (got {frac})"
        );
        assert!(frac <= 1.0);
        assert!(!result.to_string().is_empty());
        assert!(result.mean() > 0.0);
    }
}
