//! Figure 6: instruction miss coverage as a function of aggregate history
//! size, SHIFT vs. PIF.
//!
//! The x-axis is the *aggregate* history capacity in spatial region records:
//! for PIF the capacity is split evenly across the cores' private histories;
//! for SHIFT it is the size of the single shared history. Predictions are
//! tracked without prefetching into (or perturbing) the instruction cache.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_core::{PifConfig, ShiftMode};
use shift_trace::{Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::matrix::{RunHandle, RunMatrix};
use crate::store::RunOutcomes;

/// Coverage at one aggregate history size.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HistorySweepPoint {
    /// Aggregate history capacity in records (`None` = unbounded).
    pub aggregate_records: Option<usize>,
    /// Fraction of baseline misses predicted by SHIFT.
    pub shift_coverage: f64,
    /// Fraction of baseline misses predicted by PIF.
    pub pif_coverage: f64,
}

/// The Figure 6 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistorySweepResult {
    /// Sweep points, in increasing aggregate-size order.
    pub points: Vec<HistorySweepPoint>,
}

impl fmt::Display for HistorySweepResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 6: L1-I miss coverage vs. aggregate history size")?;
        writeln!(f, "{:>12}{:>10}{:>10}", "agg. size", "SHIFT", "PIF")?;
        for p in &self.points {
            let label = match p.aggregate_records {
                Some(n) if n % 1024 == 0 => format!("{}K", n / 1024),
                Some(n) => n.to_string(),
                None => "inf".to_owned(),
            };
            writeln!(
                f,
                "{:>12}{:>9.1}%{:>9.1}%",
                label,
                p.shift_coverage * 100.0,
                p.pif_coverage * 100.0
            )?;
        }
        Ok(())
    }
}

/// Runs the Figure 6 sweep. `aggregate_sizes` entries of `None` model an
/// unbounded ("inf") history. Coverage is averaged (miss-weighted) across the
/// given workloads.
///
/// The whole (size × workload × {SHIFT, PIF}) grid is declared as one
/// [`RunMatrix`] and executed in parallel. Deduplication helps twice here:
/// `None` aliases the largest bounded size if both are requested, and small
/// aggregate sizes whose per-core PIF history clamps to the same floor share
/// one PIF run.
pub fn coverage_vs_history(
    workloads: &[WorkloadSpec],
    aggregate_sizes: &[Option<usize>],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> HistorySweepResult {
    let mut matrix = RunMatrix::new();
    let plan = HistorySweepPlan::plan(&mut matrix, workloads, aggregate_sizes, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 6 sweep: per aggregate size and workload, one SHIFT
/// and one PIF prediction-only run.
#[derive(Clone, Debug)]
pub struct HistorySweepPlan {
    aggregate_sizes: Vec<Option<usize>>,
    grid: Vec<Vec<(RunHandle, RunHandle)>>,
}

impl HistorySweepPlan {
    /// Plans the (size × workload × {SHIFT, PIF}) grid into `matrix`.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        aggregate_sizes: &[Option<usize>],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty() && !aggregate_sizes.is_empty());
        let unbounded_records = 4 * 1024 * 1024;
        let options = SimOptions::new(scale, seed).prediction_only();

        let grid = aggregate_sizes
            .iter()
            .map(|&aggregate| {
                let aggregate_records = aggregate.unwrap_or(unbounded_records);
                let per_core_records = (aggregate_records / cores as usize).max(16);
                workloads
                    .iter()
                    .map(|workload| {
                        let shift_cfg = PrefetcherConfig::Shift {
                            history_records: aggregate_records,
                            mode: ShiftMode::Dedicated { zero_latency: true },
                        };
                        let pif_cfg = PrefetcherConfig::Pif(PifConfig::with_history_records(
                            per_core_records,
                        ));
                        (
                            matrix.standalone_with(
                                CmpConfig::micro13(cores, shift_cfg),
                                workload,
                                options,
                            ),
                            matrix.standalone_with(
                                CmpConfig::micro13(cores, pif_cfg),
                                workload,
                                options,
                            ),
                        )
                    })
                    .collect()
            })
            .collect();
        HistorySweepPlan {
            aggregate_sizes: aggregate_sizes.to_vec(),
            grid,
        }
    }

    /// Derives the Figure 6 result (miss-weighted coverage averages) from the
    /// executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> HistorySweepResult {
        let points = self
            .aggregate_sizes
            .iter()
            .zip(&self.grid)
            .map(|(&aggregate, handles)| {
                let mut shift_pred = 0u64;
                let mut shift_misses = 0u64;
                let mut pif_pred = 0u64;
                let mut pif_misses = 0u64;
                for &(shift_handle, pif_handle) in handles {
                    let shift_run = &outcomes[shift_handle];
                    shift_pred += shift_run.coverage.predicted;
                    shift_misses += shift_run.coverage.baseline_misses();
                    let pif_run = &outcomes[pif_handle];
                    pif_pred += pif_run.coverage.predicted;
                    pif_misses += pif_run.coverage.baseline_misses();
                }
                HistorySweepPoint {
                    aggregate_records: aggregate,
                    shift_coverage: ratio(shift_pred, shift_misses),
                    pif_coverage: ratio(pif_pred, pif_misses),
                }
            })
            .collect();
        HistorySweepResult { points }
    }
}

fn ratio(n: u64, d: u64) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn coverage_grows_with_history_size_and_shift_beats_pif() {
        let workloads = vec![presets::tiny()];
        let result = coverage_vs_history(&workloads, &[Some(64), Some(4096)], 4, Scale::Test, 3);
        assert_eq!(result.points.len(), 2);
        let small = &result.points[0];
        let large = &result.points[1];
        assert!(
            large.shift_coverage >= small.shift_coverage,
            "SHIFT coverage must not shrink with more history"
        );
        // With equal aggregate capacity, the shared history covers at least as
        // much as the partitioned per-core histories.
        assert!(small.shift_coverage >= small.pif_coverage * 0.95);
        assert!(!result.to_string().is_empty());
    }
}
