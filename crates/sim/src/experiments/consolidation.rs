//! Figure 10: workload consolidation — four server workloads sharing the CMP,
//! each with its own OS image, history generator core, and LLC-embedded
//! history buffer.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{ConsolidationSpec, Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::runner::RunMatrix;

/// The Figure 10 result: speedups of each prefetcher configuration over the
/// no-prefetch baseline for the consolidated mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConsolidationResult {
    /// Names of the consolidated workloads.
    pub workloads: Vec<String>,
    /// `(prefetcher label, speedup)` pairs in configuration order.
    pub speedups: Vec<(String, f64)>,
}

impl ConsolidationResult {
    /// Speedup of the configuration with the given label.
    pub fn speedup_of(&self, label: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

impl fmt::Display for ConsolidationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: speedup under workload consolidation")?;
        writeln!(f, "mix: {}", self.workloads.join(" + "))?;
        for (label, speedup) in &self.speedups {
            writeln!(f, "{label:<18}{speedup:>8.3}")?;
        }
        Ok(())
    }
}

/// Runs the Figure 10 experiment: `workloads` are consolidated evenly onto
/// `cores` cores and each configuration's throughput is compared to the
/// no-prefetch baseline.
///
/// The baseline and every configuration are declared as one [`RunMatrix`]
/// (duplicate configurations collapse onto a single run, including a `None`
/// entry onto the baseline) and executed in parallel.
pub fn consolidation(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> ConsolidationResult {
    assert!(!workloads.is_empty() && !prefetchers.is_empty());
    let spec = ConsolidationSpec::even_split(workloads.to_vec(), cores);
    let options = SimOptions::new(scale, seed);

    let mut matrix = RunMatrix::new();
    let baseline = matrix.consolidated(
        CmpConfig::micro13(cores, PrefetcherConfig::None),
        &spec,
        options,
    );
    let handles: Vec<_> = prefetchers
        .iter()
        .map(|&p| matrix.consolidated(CmpConfig::micro13(cores, p), &spec, options))
        .collect();
    let outcomes = matrix.execute();

    let speedups = prefetchers
        .iter()
        .zip(&handles)
        .map(|(p, &handle)| {
            (
                p.label(),
                outcomes[handle].speedup_over(&outcomes[baseline]),
            )
        })
        .collect();

    ConsolidationResult {
        workloads: workloads.iter().map(|w| w.name.clone()).collect(),
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn consolidated_shift_still_speeds_up() {
        // Two tiny workloads on four cores keeps the test fast while still
        // exercising per-workload histories and generator cores.
        let workloads = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        let result = consolidation(
            &workloads,
            &[
                PrefetcherConfig::next_line(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            23,
        );
        let shift = result.speedup_of("SHIFT").unwrap();
        let nl = result.speedup_of("NextLine").unwrap();
        assert!(shift > 1.0, "SHIFT must speed up the consolidated mix");
        assert!(
            shift > nl * 0.98,
            "SHIFT should be at least on par with next-line"
        );
        assert_eq!(result.workloads.len(), 2);
        assert!(!result.to_string().is_empty());
    }
}
