//! Figure 10: workload consolidation — four server workloads sharing the CMP,
//! each with its own OS image, history generator core, and LLC-embedded
//! history buffer.
//!
//! The paper's claim: SHIFT keeps working under consolidation (one
//! virtualized history per workload), speeding the mix up by ≈1.22 —
//! within ≈5 % of PIF_32K's benefit at a fraction of its storage, with
//! ZeroLat-SHIFT at ≈1.25. The summary's `speedups` are
//! `(prefetcher label, speedup over the consolidated no-prefetch baseline)`
//! pairs in configuration order.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_trace::{ConsolidationSpec, Scale, WorkloadSpec};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::matrix::{RunHandle, RunMatrix};
use crate::store::RunOutcomes;

/// The Figure 10 result: speedups of each prefetcher configuration over the
/// no-prefetch baseline for the consolidated mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConsolidationResult {
    /// Names of the consolidated workloads.
    pub workloads: Vec<String>,
    /// `(prefetcher label, speedup)` pairs in configuration order.
    pub speedups: Vec<(String, f64)>,
}

impl ConsolidationResult {
    /// Speedup of the configuration with the given label.
    pub fn speedup_of(&self, label: &str) -> Option<f64> {
        self.speedups
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

impl fmt::Display for ConsolidationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: speedup under workload consolidation")?;
        writeln!(f, "mix: {}", self.workloads.join(" + "))?;
        for (label, speedup) in &self.speedups {
            writeln!(f, "{label:<18}{speedup:>8.3}")?;
        }
        Ok(())
    }
}

/// Runs the Figure 10 experiment: `workloads` are consolidated evenly onto
/// `cores` cores and each configuration's throughput is compared to the
/// no-prefetch baseline.
///
/// The baseline and every configuration are declared as one [`RunMatrix`]
/// (duplicate configurations collapse onto a single run, including a `None`
/// entry onto the baseline) and executed in parallel.
pub fn consolidation(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> ConsolidationResult {
    let mut matrix = RunMatrix::new();
    let plan = ConsolidationPlan::plan(&mut matrix, workloads, prefetchers, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 10 sweep: the consolidated-mix baseline plus one
/// consolidated run per prefetcher configuration.
#[derive(Clone, Debug)]
pub struct ConsolidationPlan {
    workloads: Vec<String>,
    labels: Vec<String>,
    baseline: RunHandle,
    handles: Vec<RunHandle>,
}

impl ConsolidationPlan {
    /// Plans the consolidated runs into `matrix` (duplicate configurations
    /// collapse onto a single run, including a `None` entry onto the
    /// baseline).
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        prefetchers: &[PrefetcherConfig],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty() && !prefetchers.is_empty());
        let spec = ConsolidationSpec::even_split(workloads.to_vec(), cores);
        let options = SimOptions::new(scale, seed);

        let baseline = matrix.consolidated(
            CmpConfig::micro13(cores, PrefetcherConfig::None),
            &spec,
            options,
        );
        let handles = prefetchers
            .iter()
            .map(|&p| matrix.consolidated(CmpConfig::micro13(cores, p), &spec, options))
            .collect();
        ConsolidationPlan {
            workloads: workloads.iter().map(|w| w.name.clone()).collect(),
            labels: prefetchers.iter().map(PrefetcherConfig::label).collect(),
            baseline,
            handles,
        }
    }

    /// Derives the Figure 10 result from the executed matrix.
    pub fn collect(&self, outcomes: &RunOutcomes) -> ConsolidationResult {
        let speedups = self
            .labels
            .iter()
            .zip(&self.handles)
            .map(|(label, &handle)| {
                (
                    label.clone(),
                    outcomes[handle].speedup_over(&outcomes[self.baseline]),
                )
            })
            .collect();
        ConsolidationResult {
            workloads: self.workloads.clone(),
            speedups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn consolidated_shift_still_speeds_up() {
        // Two tiny workloads on four cores keeps the test fast while still
        // exercising per-workload histories and generator cores.
        let workloads = vec![
            presets::tiny().with_region_index(0),
            presets::tiny().with_region_index(1),
        ];
        let result = consolidation(
            &workloads,
            &[
                PrefetcherConfig::next_line(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            23,
        );
        let shift = result.speedup_of("SHIFT").unwrap();
        let nl = result.speedup_of("NextLine").unwrap();
        assert!(shift > 1.0, "SHIFT must speed up the consolidated mix");
        assert!(
            shift > nl * 0.98,
            "SHIFT should be at least on par with next-line"
        );
        assert_eq!(result.workloads.len(), 2);
        assert!(!result.to_string().is_empty());
    }
}
