//! Figure 2 and §5.6: performance-density analysis across core types.
//!
//! For each core microarchitecture (Fat-OoO, Lean-OoO, Lean-IO) the study
//! compares prefetcher designs in the relative-performance / relative-area
//! plane: a design improves performance density only if its relative
//! performance exceeds its relative area. PIF's 0.9 mm²-per-core storage is
//! a bargain next to a 25 mm² Xeon but prohibitive next to a 1.3 mm² A8;
//! SHIFT's ≈1 mm² *total* cost improves density for every core type.

use std::fmt;

use serde::{Deserialize, Serialize};
use shift_core::{InstructionPrefetcher, Pif, Shift, ShiftConfig, StorageCost};
use shift_cpu::CoreKind;
use shift_metrics::{AreaModel, PdComparison};
use shift_trace::{Scale, WorkloadSpec};
use shift_types::{BlockAddr, CoreId};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::matrix::{RunHandle, RunMatrix};
use crate::results::geometric_mean;
use crate::store::RunOutcomes;

/// One (core type, prefetcher) point in the Figure 2 plane.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PdPoint {
    /// Core microarchitecture.
    pub core_kind: CoreKind,
    /// Prefetcher label.
    pub prefetcher: String,
    /// Geometric-mean speedup over the no-prefetch baseline on the same core.
    pub speedup: f64,
    /// Area relative to the baseline CMP (cores only + prefetcher storage).
    pub relative_area: f64,
}

impl PdPoint {
    /// Performance-density ratio relative to the baseline (> 1 is a gain).
    pub fn pd_ratio(&self) -> f64 {
        PdComparison {
            relative_performance: self.speedup,
            relative_area: self.relative_area,
        }
        .pd_ratio()
    }
}

/// The Figure 2 / §5.6 result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerformanceDensityResult {
    /// All evaluated points.
    pub points: Vec<PdPoint>,
}

impl PerformanceDensityResult {
    /// Finds a point by core kind and prefetcher label.
    pub fn point(&self, kind: CoreKind, prefetcher: &str) -> Option<&PdPoint> {
        self.points
            .iter()
            .find(|p| p.core_kind == kind && p.prefetcher == prefetcher)
    }

    /// Performance-density improvement of `a` over `b` for a core kind.
    pub fn pd_improvement(&self, kind: CoreKind, a: &str, b: &str) -> Option<f64> {
        let pa = self.point(kind, a)?;
        let pb = self.point(kind, b)?;
        Some(pa.pd_ratio() / pb.pd_ratio())
    }
}

impl fmt::Display for PerformanceDensityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 / §5.6: relative performance, relative area, and PD ratio"
        )?;
        writeln!(
            f,
            "{:<10}{:<16}{:>10}{:>12}{:>10}",
            "core", "prefetcher", "speedup", "rel. area", "PD"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:<10}{:<16}{:>10.3}{:>12.3}{:>10.3}",
                p.core_kind.to_string(),
                p.prefetcher,
                p.speedup,
                p.relative_area,
                p.pd_ratio()
            )?;
        }
        Ok(())
    }
}

pub(crate) fn storage_of(
    prefetcher: &PrefetcherConfig,
    cores: u16,
    llc_blocks: usize,
) -> StorageCost {
    match prefetcher {
        PrefetcherConfig::None | PrefetcherConfig::NextLine { .. } => StorageCost::none(),
        PrefetcherConfig::Pif(cfg) => Pif::new(*cfg, cores).storage(cores),
        PrefetcherConfig::Shift {
            history_records,
            mode,
        } => {
            let mut cfg = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0));
            cfg.history_records = *history_records;
            cfg.mode = *mode;
            cfg.llc_capacity_blocks = llc_blocks;
            Shift::new(cfg, cores).storage(cores)
        }
        // The hybrids cost the sum of their parts; next-line fallbacks and
        // the gate/port control bits are free, so each reduces to its
        // history-bearing component.
        PrefetcherConfig::ShiftNextLine {
            history_records,
            mode,
            ..
        }
        | PrefetcherConfig::AdaptiveNlShift {
            history_records,
            mode,
            ..
        }
        | PrefetcherConfig::ThrottledShift {
            history_records,
            mode,
            ..
        } => storage_of(
            &PrefetcherConfig::Shift {
                history_records: *history_records,
                mode: *mode,
            },
            cores,
            llc_blocks,
        ),
        PrefetcherConfig::GatedPif { config, .. } => {
            storage_of(&PrefetcherConfig::Pif(*config), cores, llc_blocks)
        }
    }
}

/// Runs the performance-density study for the given prefetchers over the
/// three core types.
///
/// The full (core type × workload × {baseline ∪ prefetchers}) sweep is
/// declared as one [`RunMatrix`] and executed in parallel; each core type's
/// per-workload baseline is simulated exactly once regardless of how many
/// prefetchers it is compared against.
pub fn performance_density(
    workloads: &[WorkloadSpec],
    prefetchers: &[PrefetcherConfig],
    cores: u16,
    scale: Scale,
    seed: u64,
) -> PerformanceDensityResult {
    let mut matrix = RunMatrix::new();
    let plan =
        PerformanceDensityPlan::plan(&mut matrix, workloads, prefetchers, cores, scale, seed);
    plan.collect(&matrix.execute())
}

/// The planned Figure 2 / §5.6 sweep: per core type, the per-workload
/// baselines plus one run per (prefetcher, workload) pair.
#[derive(Clone, Debug)]
pub struct PerformanceDensityPlan {
    prefetchers: Vec<PrefetcherConfig>,
    cores: u16,
    grid: Vec<(CoreKind, Vec<RunHandle>, Vec<Vec<RunHandle>>)>,
}

impl PerformanceDensityPlan {
    /// Plans the (core type × workload × {baseline ∪ prefetchers}) sweep into
    /// `matrix`; each core type's per-workload baseline is planned once no
    /// matter how many prefetchers it is compared against.
    pub fn plan(
        matrix: &mut RunMatrix,
        workloads: &[WorkloadSpec],
        prefetchers: &[PrefetcherConfig],
        cores: u16,
        scale: Scale,
        seed: u64,
    ) -> Self {
        assert!(!workloads.is_empty() && !prefetchers.is_empty());
        let options = SimOptions::new(scale, seed);
        let grid = CoreKind::ALL
            .into_iter()
            .map(|kind| {
                let baselines: Vec<_> = workloads
                    .iter()
                    .map(|w| {
                        matrix.standalone_with(
                            CmpConfig::micro13(cores, PrefetcherConfig::None).with_core_kind(kind),
                            w,
                            options,
                        )
                    })
                    .collect();
                let runs: Vec<Vec<_>> = prefetchers
                    .iter()
                    .map(|&prefetcher| {
                        workloads
                            .iter()
                            .map(|w| {
                                matrix.standalone_with(
                                    CmpConfig::micro13(cores, prefetcher).with_core_kind(kind),
                                    w,
                                    options,
                                )
                            })
                            .collect()
                    })
                    .collect();
                (kind, baselines, runs)
            })
            .collect();
        PerformanceDensityPlan {
            prefetchers: prefetchers.to_vec(),
            cores,
            grid,
        }
    }

    /// Derives the Figure 2 / §5.6 result (speedups from the executed matrix,
    /// areas from the [`AreaModel`]).
    pub fn collect(&self, outcomes: &RunOutcomes) -> PerformanceDensityResult {
        let area_model = AreaModel::nm40();
        let cores = self.cores;
        let mut points = Vec::new();
        for (kind, baselines, runs) in &self.grid {
            let baseline_area = area_model.cmp_core_area_mm2(*kind, cores, &StorageCost::none());
            for (prefetcher, handles) in self.prefetchers.iter().zip(runs) {
                let speedups: Vec<f64> = handles
                    .iter()
                    .zip(baselines)
                    .map(|(&run, &baseline)| outcomes[run].speedup_over(&outcomes[baseline]))
                    .collect();
                let llc_blocks = CmpConfig::micro13(cores, *prefetcher).llc.capacity_blocks();
                let storage = storage_of(prefetcher, cores, llc_blocks);
                let area = area_model.cmp_core_area_mm2(*kind, cores, &storage);
                points.push(PdPoint {
                    core_kind: *kind,
                    prefetcher: prefetcher.label(),
                    speedup: geometric_mean(&speedups),
                    relative_area: area / baseline_area,
                });
            }
        }
        PerformanceDensityResult { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shift_trace::presets;

    #[test]
    fn shift_area_overhead_is_far_smaller_than_pif() {
        let result = performance_density(
            &[presets::tiny()],
            &[
                PrefetcherConfig::pif_32k(),
                PrefetcherConfig::shift_virtualized(),
            ],
            4,
            Scale::Test,
            31,
        );
        for kind in CoreKind::ALL {
            let pif = result.point(kind, "PIF_32K").unwrap();
            let shift = result.point(kind, "SHIFT").unwrap();
            assert!(
                shift.relative_area < pif.relative_area,
                "{kind}: SHIFT area {} must be below PIF {}",
                shift.relative_area,
                pif.relative_area
            );
            assert!(shift.speedup > 1.0);
        }
        // The leaner the core, the larger PIF's relative area penalty.
        let pif_fat = result
            .point(CoreKind::FatOoO, "PIF_32K")
            .unwrap()
            .relative_area;
        let pif_io = result
            .point(CoreKind::LeanIO, "PIF_32K")
            .unwrap()
            .relative_area;
        assert!(pif_io > pif_fat);
        assert!(!result.to_string().is_empty());
        assert!(
            result
                .pd_improvement(CoreKind::LeanIO, "SHIFT", "PIF_32K")
                .unwrap()
                > 1.0
        );
    }
}
