//! The trace-driven CMP simulator facade.
//!
//! A [`Simulation`] assembles per-core trace generators, private L1 caches,
//! the shared banked LLC, the mesh interconnect, the analytical core timing
//! model, and the configured instruction prefetcher, then drives all cores in
//! a round-robin interleaving: every core consumes one instruction-block
//! fetch (and the data references preceding it) per round. Cache warm-up runs
//! first; statistics are reset before the measured interval, mirroring the
//! paper's warmed-checkpoint methodology.
//!
//! `Simulation` itself is a thin, cloneable description of one run — the
//! actual machinery (core stepping, the `MemorySystem`, the prefetcher
//! wiring) lives in the private `engine` module, and
//! sweeps of many runs are planned and executed in parallel by
//! [`RunMatrix`](crate::matrix::RunMatrix).

use shift_trace::{ConsolidationSpec, WorkloadSpec};

use crate::config::{CmpConfig, SimOptions};
use crate::engine::Engine;
use crate::results::RunResult;

/// A configured simulation, ready to run.
///
/// See the crate-level documentation for an end-to-end example.
#[derive(Clone)]
pub struct Simulation {
    config: CmpConfig,
    options: SimOptions,
    consolidation: ConsolidationSpec,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("workloads", &self.consolidation.workloads().len())
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation of a single workload running on every core.
    pub fn standalone(config: CmpConfig, workload: WorkloadSpec, options: SimOptions) -> Self {
        let consolidation = ConsolidationSpec::standalone(workload, config.cores);
        Simulation {
            config,
            options,
            consolidation,
        }
    }

    /// Creates a simulation of several consolidated workloads.
    ///
    /// # Panics
    ///
    /// Panics if the consolidation spec's core count differs from the CMP's.
    pub fn consolidated(
        config: CmpConfig,
        consolidation: ConsolidationSpec,
        options: SimOptions,
    ) -> Self {
        assert_eq!(
            consolidation.total_cores(),
            config.cores,
            "consolidation cores must match the CMP"
        );
        Simulation {
            config,
            options,
            consolidation,
        }
    }

    /// The CMP configuration.
    pub fn config(&self) -> &CmpConfig {
        &self.config
    }

    /// The run options.
    pub fn options(&self) -> &SimOptions {
        &self.options
    }

    /// The workload-to-core assignment.
    pub fn consolidation(&self) -> &ConsolidationSpec {
        &self.consolidation
    }

    /// Assembles the simulation [`Engine`] without running it, for callers
    /// that drive stepping themselves (e.g. the perf harness, which measures
    /// steady-state throughput over [`Engine::step_rounds`] batches).
    pub fn engine(&self) -> Engine {
        Engine::new(&self.config, self.options, &self.consolidation)
    }

    /// Runs the simulation and returns aggregate results.
    ///
    /// Each run is fully deterministic in `(config, workloads, options)`: the
    /// only randomness is drawn from generators seeded by
    /// [`SimOptions::seed`], which is what lets [`RunMatrix`] execute runs on
    /// worker threads and still return bit-identical results to a serial
    /// sweep.
    ///
    /// [`RunMatrix`]: crate::matrix::RunMatrix
    pub fn run(&self) -> RunResult {
        self.engine().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
    use shift_trace::{presets, Scale};
    use shift_types::AccessClass;

    fn run(prefetcher: PrefetcherConfig) -> RunResult {
        let config = CmpConfig::micro13(4, prefetcher);
        let options = SimOptions::new(Scale::Test, 7);
        Simulation::standalone(config, presets::tiny(), options).run()
    }

    #[test]
    fn baseline_run_produces_misses_and_cycles() {
        let result = run(PrefetcherConfig::None);
        assert_eq!(result.per_core.len(), 4);
        assert!(result.coverage.uncovered > 0);
        assert_eq!(result.coverage.covered, 0);
        assert!(result.throughput() > 0.0);
        assert!(result.l1i_mpki() > 0.0);
        assert!(result.llc_traffic.count(AccessClass::Demand) > 0);
    }

    #[test]
    fn next_line_covers_some_misses_and_speeds_up() {
        let baseline = run(PrefetcherConfig::None);
        let nl = run(PrefetcherConfig::next_line());
        assert!(nl.coverage.covered > 0);
        let coverage = nl.coverage.coverage();
        assert!(
            coverage > 0.05 && coverage < 0.9,
            "next-line coverage {coverage}"
        );
        assert!(nl.speedup_over(&baseline) > 1.0);
    }

    #[test]
    fn shift_covers_more_than_next_line() {
        let nl = run(PrefetcherConfig::next_line());
        let shift = run(PrefetcherConfig::shift_virtualized());
        assert!(
            shift.coverage.coverage() > nl.coverage.coverage(),
            "SHIFT {} vs next-line {}",
            shift.coverage.coverage(),
            nl.coverage.coverage()
        );
        assert!(shift.llc_traffic.count(AccessClass::HistoryRead) > 0);
        assert!(shift.llc_traffic.count(AccessClass::IndexUpdate) > 0);
    }

    #[test]
    fn miss_elimination_full_probability_removes_all_stalls() {
        let config = CmpConfig::micro13(2, PrefetcherConfig::None);
        let options = SimOptions::new(Scale::Test, 3).with_miss_elimination(1.0);
        let result = Simulation::standalone(config, presets::tiny(), options).run();
        assert_eq!(result.coverage.uncovered, 0);
        assert!(result.coverage.covered > 0);
    }

    #[test]
    fn prediction_only_mode_does_not_fill_prefetches() {
        let config = CmpConfig::micro13(2, PrefetcherConfig::pif_32k());
        let options = SimOptions::new(Scale::Test, 3).prediction_only();
        let result = Simulation::standalone(config, presets::tiny(), options).run();
        // Nothing is ever covered (no prefetch fills), but predictions happen.
        assert_eq!(result.coverage.covered, 0);
        assert!(result.coverage.predicted > 0);
    }

    #[test]
    #[should_panic(expected = "consolidation cores must match")]
    fn consolidation_core_mismatch_rejected() {
        let config = CmpConfig::micro13(4, PrefetcherConfig::None);
        let spec = shift_trace::ConsolidationSpec::standalone(presets::tiny(), 8);
        let _ = Simulation::consolidated(config, spec, SimOptions::new(Scale::Test, 1));
    }
}
