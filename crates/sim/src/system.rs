//! The trace-driven CMP simulator.
//!
//! A [`Simulation`] assembles per-core trace generators, private L1 caches,
//! the shared banked LLC, the mesh interconnect, the analytical core timing
//! model, and the configured instruction prefetcher, then drives all cores in
//! a round-robin interleaving: every core consumes one instruction-block
//! fetch (and the data references preceding it) per round. Cache warm-up runs
//! first; statistics are reset before the measured interval, mirroring the
//! paper's warmed-checkpoint methodology.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shift_cache::{NucaLlc, SetAssocCache};
use shift_core::{
    InstructionPrefetcher, NextLinePrefetcher, NullPrefetcher, Pif, PrefetchCandidate, Shift,
    ShiftConfig,
};
use shift_cpu::{CoreTiming, TimingAccumulator};
use shift_noc::Mesh;
use shift_trace::{
    ConsolidationSpec, CoreTraceGenerator, TraceEvent, WorkloadSpec,
};
use shift_trace::workload::WorkloadProgram;
use shift_types::{AccessClass, BlockAddr, CoreId};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::{CoreResult, CoverageStats, RunResult};

/// Per-L1-I-line bookkeeping used to classify covered misses and discards.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct L1iMeta {
    /// The line was installed by a prefetch and has not been referenced yet.
    prefetched_unused: bool,
    /// Local cycle at which the prefetched data actually arrives.
    ready_at: f64,
}

struct CoreState {
    id: CoreId,
    generator: CoreTraceGenerator,
    l1i: SetAssocCache<L1iMeta>,
    l1d: SetAssocCache<()>,
    timing: TimingAccumulator,
    local_cycle: f64,
    fetches: u64,
    coverage: CoverageStats,
}

impl CoreState {
    fn reset_measurement(&mut self) {
        // Prefetches issued during warm-up have long since arrived; clear
        // their arrival timestamps so they are not charged as late.
        self.l1i.for_each_meta_mut(|m| m.ready_at = 0.0);
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.timing = TimingAccumulator::new();
        self.local_cycle = 0.0;
        self.fetches = 0;
        self.coverage = CoverageStats::default();
    }
}

/// A configured simulation, ready to run.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulation {
    config: CmpConfig,
    options: SimOptions,
    consolidation: ConsolidationSpec,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("workloads", &self.consolidation.workloads().len())
            .finish()
    }
}

impl Simulation {
    /// Creates a simulation of a single workload running on every core.
    pub fn standalone(config: CmpConfig, workload: WorkloadSpec, options: SimOptions) -> Self {
        let consolidation = ConsolidationSpec::standalone(workload, config.cores);
        Simulation {
            config,
            options,
            consolidation,
        }
    }

    /// Creates a simulation of several consolidated workloads.
    ///
    /// # Panics
    ///
    /// Panics if the consolidation spec's core count differs from the CMP's.
    pub fn consolidated(
        config: CmpConfig,
        consolidation: ConsolidationSpec,
        options: SimOptions,
    ) -> Self {
        assert_eq!(
            consolidation.total_cores(),
            config.cores,
            "consolidation cores must match the CMP"
        );
        Simulation {
            config,
            options,
            consolidation,
        }
    }

    /// The CMP configuration.
    pub fn config(&self) -> &CmpConfig {
        &self.config
    }

    /// Runs the simulation and returns aggregate results.
    pub fn run(&self) -> RunResult {
        let cores = self.config.cores;
        let timing = CoreTiming::new(self.config.core_kind);
        let mut llc = NucaLlc::new(self.config.llc);
        let mut mesh = Mesh::new(self.config.mesh);
        let mut rng = SmallRng::seed_from_u64(self.options.seed ^ 0xF1E2_D3C4_B5A6_9788);

        // Compile one program per workload and build per-core generators.
        let programs: Vec<Arc<WorkloadProgram>> = self
            .consolidation
            .workloads()
            .iter()
            .map(WorkloadProgram::build)
            .collect();
        let assignments = self.consolidation.assignments();

        let mut core_states: Vec<CoreState> = assignments
            .iter()
            .map(|a| CoreState {
                id: a.core,
                generator: CoreTraceGenerator::with_program(
                    Arc::clone(&programs[a.workload.index()]),
                    a.core,
                    self.options.seed,
                ),
                l1i: SetAssocCache::new(self.config.l1i),
                l1d: SetAssocCache::new(self.config.l1d),
                timing: TimingAccumulator::new(),
                local_cycle: 0.0,
                fetches: 0,
                coverage: CoverageStats::default(),
            })
            .collect();

        // Build the prefetcher(s): one instance for the whole CMP, except for
        // SHIFT under consolidation where each workload gets its own shared
        // history and generator core.
        let (mut prefetchers, pf_of_core) = self.build_prefetchers(&mut llc, &mesh);

        // Warm-up, then measurement.
        let warmup = self.options.scale.warmup_fetches_per_core();
        let measured = self.options.scale.fetches_per_core();

        for phase_fetches in [warmup, measured] {
            for _ in 0..phase_fetches {
                for idx in 0..cores as usize {
                    let pf = prefetchers[pf_of_core[idx]].as_mut();
                    step_one_fetch(
                        &mut core_states[idx],
                        pf,
                        &mut llc,
                        &mut mesh,
                        &timing,
                        &self.options,
                        &mut rng,
                    );
                }
            }
            if phase_fetches == warmup {
                for core in &mut core_states {
                    core.reset_measurement();
                }
                llc.reset_stats();
                mesh.reset_stats();
            }
        }

        drop(prefetchers);
        self.assemble_results(core_states, llc, mesh, &timing)
    }

    fn build_prefetchers(
        &self,
        llc: &mut NucaLlc,
        mesh: &Mesh,
    ) -> (Vec<Box<dyn InstructionPrefetcher>>, Vec<usize>) {
        let cores = self.config.cores;
        let n_workloads = self.consolidation.workloads().len();
        match &self.config.prefetcher {
            PrefetcherConfig::None => (
                vec![Box::new(NullPrefetcher::new()) as Box<dyn InstructionPrefetcher>],
                vec![0; cores as usize],
            ),
            PrefetcherConfig::NextLine { degree } => (
                vec![Box::new(NextLinePrefetcher::new(*degree, cores)) as Box<_>],
                vec![0; cores as usize],
            ),
            PrefetcherConfig::Pif(cfg) => (
                vec![Box::new(Pif::new(*cfg, cores)) as Box<_>],
                vec![0; cores as usize],
            ),
            PrefetcherConfig::Shift {
                history_records,
                mode,
            } => {
                // One shared history per workload, generated by the first core
                // of that workload, embedded at a distinct LLC window.
                let mut prefetchers: Vec<Box<dyn InstructionPrefetcher>> = Vec::new();
                let mut pf_of_core = vec![0usize; cores as usize];
                for w in 0..n_workloads {
                    let workload_cores = self
                        .consolidation
                        .cores_of(shift_types::WorkloadId::new(w as u8));
                    let generator = workload_cores[0];
                    let history_base = BlockAddr::new(0x7000_0000 + (w as u64) * 0x1_0000);
                    let mut cfg = ShiftConfig::virtualized_micro13(generator, history_base);
                    cfg.history_records = *history_records;
                    cfg.index_entries = (*history_records).max(16);
                    cfg.mode = *mode;
                    cfg.noc_round_trip = mesh.average_round_trip_latency(0).round() as u64;
                    cfg.llc_capacity_blocks = self.config.llc.capacity_blocks();
                    let mut shift = Shift::new(cfg, cores);
                    shift.install(llc);
                    for c in workload_cores {
                        pf_of_core[c.index()] = prefetchers.len();
                    }
                    prefetchers.push(Box::new(shift));
                }
                (prefetchers, pf_of_core)
            }
        }
    }

    fn assemble_results(
        &self,
        core_states: Vec<CoreState>,
        llc: NucaLlc,
        mesh: Mesh,
        timing: &CoreTiming,
    ) -> RunResult {
        let mut coverage = CoverageStats::default();
        let per_core: Vec<CoreResult> = core_states
            .iter()
            .map(|c| {
                coverage.merge(&c.coverage);
                let cycles = timing.total_cycles(&c.timing);
                CoreResult {
                    instructions: c.timing.instructions,
                    fetches: c.fetches,
                    cycles,
                    ipc: timing.ipc(&c.timing),
                    raw_fetch_stall_cycles: c.timing.raw_fetch_stall_cycles,
                    raw_data_stall_cycles: c.timing.raw_data_stall_cycles,
                    l1i: *c.l1i.stats(),
                    l1d: *c.l1d.stats(),
                    coverage: c.coverage,
                }
            })
            .collect();

        let traffic = llc.traffic().clone();
        let history_block_accesses = traffic.count(AccessClass::HistoryRead)
            + traffic.count(AccessClass::HistoryWrite);
        let index_accesses = traffic.count(AccessClass::IndexUpdate);
        // History and index traffic travels over the mesh between the
        // requesting tile and the home bank; estimate its flit-hop cost with
        // the mesh's average hop distance (block transfers are 4 data flits +
        // 1 header; index updates are a single flit).
        let avg_hops = mesh.average_round_trip_latency(0) / (2.0 * mesh.config().hop_latency as f64);
        let overhead_flit_hops = ((history_block_accesses
            + traffic.count(AccessClass::Discard)) as f64
            * 5.0
            * avg_hops
            + index_accesses as f64 * avg_hops) as u64;

        RunResult {
            prefetcher: self.config.prefetcher.label(),
            workloads: self
                .consolidation
                .workloads()
                .iter()
                .map(|w| w.name.clone())
                .collect(),
            per_core,
            coverage,
            llc_traffic: traffic,
            llc: llc.stats(),
            overhead_flit_hops,
            history_block_accesses,
            index_accesses,
        }
    }
}

/// Advances one core by exactly one instruction-block fetch (plus any data
/// references that precede it in the trace).
fn step_one_fetch(
    core: &mut CoreState,
    pf: &mut dyn InstructionPrefetcher,
    llc: &mut NucaLlc,
    mesh: &mut Mesh,
    timing: &CoreTiming,
    options: &SimOptions,
    rng: &mut SmallRng,
) {
    loop {
        match core.generator.next_event() {
            TraceEvent::Data(d) => handle_data(core, llc, mesh, timing, d.block),
            TraceEvent::Fetch(f) => {
                handle_fetch(core, pf, llc, mesh, timing, options, rng, f.block, f.instructions);
                return;
            }
        }
    }
}

fn tile_of_core(core: CoreId, mesh: &Mesh) -> usize {
    core.index() % mesh.config().tiles()
}

/// Performs an LLC access on behalf of `core`, including the mesh round trip,
/// and returns the total raw latency (request + bank + response).
fn llc_round_trip(
    core_id: CoreId,
    block: BlockAddr,
    class: AccessClass,
    llc: &mut NucaLlc,
    mesh: &mut Mesh,
) -> u64 {
    let outcome = llc.access(block, class);
    let core_tile = tile_of_core(core_id, mesh);
    let bank_tile = outcome.bank % mesh.config().tiles();
    let req = mesh.record_transfer(core_tile, bank_tile, 8, class);
    let resp = mesh.record_transfer(bank_tile, core_tile, 64, class);
    outcome.latency + req + resp
}

fn handle_data(
    core: &mut CoreState,
    llc: &mut NucaLlc,
    mesh: &mut Mesh,
    timing: &CoreTiming,
    block: BlockAddr,
) {
    if core.l1d.access(block).is_hit() {
        return;
    }
    let raw = core.l1d.config().hit_latency
        + llc_round_trip(core.id, block, AccessClass::Demand, llc, mesh);
    core.timing.data_stall(raw);
    core.local_cycle += raw as f64 * timing.params().exposed_data_fraction();
    core.l1d.fill(block, ());
}

#[allow(clippy::too_many_arguments)]
fn handle_fetch(
    core: &mut CoreState,
    pf: &mut dyn InstructionPrefetcher,
    llc: &mut NucaLlc,
    mesh: &mut Mesh,
    timing: &CoreTiming,
    options: &SimOptions,
    rng: &mut SmallRng,
    block: BlockAddr,
    instructions: u8,
) {
    core.fetches += 1;
    let hit = core.l1i.access(block).is_hit();

    if hit {
        // First use of a prefetched line: this was a miss in the baseline
        // that the prefetcher eliminated. If the prefetch was late, part of
        // its latency is still exposed.
        // Worst-case cost of a demand miss from this core: a late prefetch can
        // never cost more than re-fetching the block on demand would.
        let miss_penalty_cap = (core.l1i.config().hit_latency
            + llc.config().hit_latency
            + llc.config().memory_latency
            + mesh.round_trip_latency(0, mesh.config().tiles() - 1))
            as f64;
        if let Some(meta) = core.l1i.meta_mut(block) {
            if meta.prefetched_unused {
                meta.prefetched_unused = false;
                // The decoupled front end runs ahead of retirement; only the
                // part of the prefetch latency that exceeds that run-ahead
                // window is exposed as a stall, and never more than a full
                // demand miss would have cost.
                let lateness = (meta.ready_at
                    - core.local_cycle
                    - timing.params().fetch_runahead_cycles as f64)
                    .clamp(0.0, miss_penalty_cap);
                core.coverage.covered += 1;
                if lateness > 0.0 {
                    core.timing.fetch_stall(lateness as u64);
                    core.local_cycle += lateness * timing.params().exposed_fetch_fraction();
                }
            }
        }
    } else {
        // Prediction-only mode (Figure 6): ask whether the prefetcher would
        // have predicted this miss before its state reacts to it.
        if options.prediction_only && pf.covers(core.id, block) {
            core.coverage.predicted += 1;
        }
        let eliminated = options
            .miss_elimination_probability
            .map(|p| p > 0.0 && rng.gen_bool(p))
            .unwrap_or(false);
        if eliminated {
            core.coverage.covered += 1;
            fill_l1i(core, block, L1iMeta::default(), llc);
        } else {
            core.coverage.uncovered += 1;
            let raw = core.l1i.config().hit_latency
                + llc_round_trip(core.id, block, AccessClass::Demand, llc, mesh);
            core.timing.fetch_stall(raw);
            core.local_cycle += raw as f64 * timing.params().exposed_fetch_fraction();
            fill_l1i(core, block, L1iMeta::default(), llc);
        }
    }

    // Prefetcher hooks: access outcome first, then the retire-order stream.
    let mut candidates = Vec::new();
    pf.on_access(core.id, block, hit, llc, &mut candidates);

    core.timing.retire_instructions(instructions as u64);
    core.local_cycle += instructions as f64 * timing.params().base_cpi;

    pf.on_retire(core.id, block, llc, &mut candidates);

    if !options.prediction_only {
        issue_prefetches(core, llc, mesh, &candidates);
    }
}

fn fill_l1i(core: &mut CoreState, block: BlockAddr, meta: L1iMeta, llc: &mut NucaLlc) {
    if let Some(evicted) = core.l1i.fill(block, meta) {
        if evicted.meta.prefetched_unused {
            // A prefetched block left the cache without ever being used: an
            // overprediction, and a useless LLC read (a "discard").
            core.coverage.overpredicted += 1;
            llc.record_traffic(AccessClass::Discard, 64);
        }
    }
}

fn issue_prefetches(
    core: &mut CoreState,
    llc: &mut NucaLlc,
    mesh: &mut Mesh,
    candidates: &[PrefetchCandidate],
) {
    for cand in candidates {
        if core.l1i.probe(cand.block) {
            continue;
        }
        let latency =
            llc_round_trip(core.id, cand.block, AccessClass::PrefetchUseful, llc, mesh);
        let ready_at = core.local_cycle + (cand.ready_delay + latency) as f64;
        fill_l1i(
            core,
            cand.block,
            L1iMeta {
                prefetched_unused: true,
                ready_at,
            },
            llc,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
    use shift_trace::{presets, Scale};

    fn run(prefetcher: PrefetcherConfig) -> RunResult {
        let config = CmpConfig::micro13(4, prefetcher);
        let options = SimOptions::new(Scale::Test, 7);
        Simulation::standalone(config, presets::tiny(), options).run()
    }

    #[test]
    fn baseline_run_produces_misses_and_cycles() {
        let result = run(PrefetcherConfig::None);
        assert_eq!(result.per_core.len(), 4);
        assert!(result.coverage.uncovered > 0);
        assert_eq!(result.coverage.covered, 0);
        assert!(result.throughput() > 0.0);
        assert!(result.l1i_mpki() > 0.0);
        assert!(result.llc_traffic.count(AccessClass::Demand) > 0);
    }

    #[test]
    fn next_line_covers_some_misses_and_speeds_up() {
        let baseline = run(PrefetcherConfig::None);
        let nl = run(PrefetcherConfig::next_line());
        assert!(nl.coverage.covered > 0);
        let coverage = nl.coverage.coverage();
        assert!(coverage > 0.05 && coverage < 0.9, "next-line coverage {coverage}");
        assert!(nl.speedup_over(&baseline) > 1.0);
    }

    #[test]
    fn shift_covers_more_than_next_line() {
        let nl = run(PrefetcherConfig::next_line());
        let shift = run(PrefetcherConfig::shift_virtualized());
        assert!(
            shift.coverage.coverage() > nl.coverage.coverage(),
            "SHIFT {} vs next-line {}",
            shift.coverage.coverage(),
            nl.coverage.coverage()
        );
        assert!(shift.llc_traffic.count(AccessClass::HistoryRead) > 0);
        assert!(shift.llc_traffic.count(AccessClass::IndexUpdate) > 0);
    }

    #[test]
    fn miss_elimination_full_probability_removes_all_stalls() {
        let config = CmpConfig::micro13(2, PrefetcherConfig::None);
        let options = SimOptions::new(Scale::Test, 3).with_miss_elimination(1.0);
        let result = Simulation::standalone(config, presets::tiny(), options).run();
        assert_eq!(result.coverage.uncovered, 0);
        assert!(result.coverage.covered > 0);
    }

    #[test]
    fn prediction_only_mode_does_not_fill_prefetches() {
        let config = CmpConfig::micro13(2, PrefetcherConfig::pif_32k());
        let options = SimOptions::new(Scale::Test, 3).prediction_only();
        let result = Simulation::standalone(config, presets::tiny(), options).run();
        // Nothing is ever covered (no prefetch fills), but predictions happen.
        assert_eq!(result.coverage.covered, 0);
        assert!(result.coverage.predicted > 0);
    }

    #[test]
    #[should_panic(expected = "consolidation cores must match")]
    fn consolidation_core_mismatch_rejected() {
        let config = CmpConfig::micro13(4, PrefetcherConfig::None);
        let spec = shift_trace::ConsolidationSpec::standalone(presets::tiny(), 8);
        let _ = Simulation::consolidated(config, spec, SimOptions::new(Scale::Test, 1));
    }
}
