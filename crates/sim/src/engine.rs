//! The simulation engine behind [`Simulation`](crate::system::Simulation).
//!
//! [`Simulation::run`](crate::system::Simulation::run) is a thin facade over
//! the pieces in this module:
//!
//! * `MemorySystem` (private) — the shared banked LLC and the mesh
//!   interconnect, bundled so that an LLC round trip (request hop, bank
//!   access, response hop) is one call instead of threading `NucaLlc` and
//!   `Mesh` through every function.
//! * `CoreLanes` / `CoreView` (private) — all per-core state (trace
//!   generator, private L1 caches, timing accumulator, coverage accounting)
//!   as parallel struct-of-arrays lanes indexed by core position, with the
//!   fetch/data handling and prefetch-issue logic as methods on a per-core
//!   view of the lanes.
//! * [`Engine`] — the round-robin interleaving of all cores over warm-up and
//!   measurement phases, plus result assembly. Public so harnesses can drive
//!   stepping in batches ([`Engine::step_rounds`]) and measure steady-state
//!   throughput.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use shift_cache::{NucaLlc, SetAssocCache};
use shift_core::{
    AdaptivePrefetcher, ConfidenceGatedPrefetcher, FallbackPrefetcher, InstructionPrefetcher,
    NextLinePrefetcher, NullPrefetcher, Pif, PrefetchCandidate, Shift, ShiftConfig,
    ThrottledPrefetcher,
};
use shift_cpu::{CoreTiming, TimingAccumulator};
use shift_noc::{Mesh, RoundTripTable};
use shift_trace::workload::WorkloadProgram;
use shift_trace::{ConsolidationSpec, CoreTraceGenerator, TraceEvent};
use shift_types::{AccessClass, BlockAddr, CoreId};

use crate::config::{CmpConfig, PrefetcherConfig, SimOptions};
use crate::results::{CoreResult, CoverageStats, RunResult};

/// Per-L1-I-line bookkeeping used to classify covered misses and discards.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct L1iMeta {
    /// The line was installed by a prefetch and has not been referenced yet.
    prefetched_unused: bool,
    /// Local cycle at which the prefetched data actually arrives.
    ready_at: f64,
}

/// The shared memory system: the banked NUCA LLC and the 2D-mesh NoC.
///
/// Every LLC access from a core travels the mesh to the home bank and back;
/// [`MemorySystem::round_trip`] performs the access and both transfers and
/// returns the total raw latency.
#[derive(Debug)]
pub(crate) struct MemorySystem {
    llc: NucaLlc,
    mesh: Mesh,
    /// Tabulated 8-byte-request / 64-byte-response round trips: per tile
    /// pair, latency and flit-hops as one table load instead of coordinate
    /// arithmetic and `div_ceil` per access.
    llc_round_trips: RoundTripTable,
    /// Core index → home tile, precomputed so the per-access path performs
    /// no modulo.
    core_tile: Vec<usize>,
    /// LLC bank → home tile, same precomputation on the response side.
    bank_tile: Vec<usize>,
    /// Worst-case demand-miss cost for the CMP's L1-I, precomputed because it
    /// caps every late-prefetch charge (one per covered miss).
    miss_penalty_cap: f64,
}

impl MemorySystem {
    pub(crate) fn new(config: &CmpConfig) -> Self {
        let llc = NucaLlc::new(config.llc);
        let mesh = Mesh::new(config.mesh);
        let tiles = mesh.config().tiles();
        // An LLC access is an 8-byte request out and a 64-byte block back.
        let llc_round_trips = RoundTripTable::new(mesh.config(), 8, 64);
        let core_tile = (0..config.cores as usize).map(|c| c % tiles).collect();
        let bank_tile = (0..llc.config().banks).map(|b| b % tiles).collect();
        // Worst-case cost of a demand miss: a late prefetch can never cost
        // more than re-fetching the block on demand would.
        let miss_penalty_cap = (config.l1i.hit_latency
            + llc.config().hit_latency
            + llc.config().memory_latency
            + mesh.round_trip_latency(0, tiles - 1)) as f64;
        MemorySystem {
            llc,
            mesh,
            llc_round_trips,
            core_tile,
            bank_tile,
            miss_penalty_cap,
        }
    }

    pub(crate) fn llc_mut(&mut self) -> &mut NucaLlc {
        &mut self.llc
    }

    pub(crate) fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Performs an LLC access on behalf of `core`, including the mesh round
    /// trip, and returns the total raw latency (request + bank + response).
    #[inline]
    pub(crate) fn round_trip(&mut self, core: CoreId, block: BlockAddr, class: AccessClass) -> u64 {
        let outcome = self.llc.access(block, class);
        let core_tile = self.core_tile[core.index()];
        let bank_tile = self.bank_tile[outcome.bank];
        outcome.latency
            + self
                .mesh
                .record_round_trip(&self.llc_round_trips, core_tile, bank_tile, class)
    }

    #[inline]
    fn miss_penalty_cap(&self) -> f64 {
        self.miss_penalty_cap
    }

    fn reset_stats(&mut self) {
        self.llc.reset_stats();
        self.mesh.reset_stats();
    }
}

/// Read-mostly state shared by every core step: the analytical timing model,
/// the run options, the miss-elimination lottery RNG, and the reusable
/// scratch buffers — prefetch candidates and the per-fetch trace-event batch
/// — so the per-fetch path never allocates in steady state.
pub(crate) struct StepEnv {
    pub(crate) timing: CoreTiming,
    pub(crate) options: SimOptions,
    pub(crate) rng: SmallRng,
    pub(crate) candidates: Vec<PrefetchCandidate>,
    pub(crate) events: Vec<TraceEvent>,
}

/// All per-core simulation state, held as parallel vectors indexed by core
/// position (struct-of-arrays). The round-robin stepping loop touches the
/// per-step scalar lanes (`local_cycle`, `fetches`, timing, coverage) of every
/// core each round; keeping each lane contiguous lets one cache line serve
/// all cores instead of striding over fat per-core structs.
pub(crate) struct CoreLanes {
    ids: Vec<CoreId>,
    generators: Vec<CoreTraceGenerator>,
    l1i: Vec<SetAssocCache<L1iMeta>>,
    l1d: Vec<SetAssocCache<()>>,
    timing: Vec<TimingAccumulator>,
    local_cycle: Vec<f64>,
    fetches: Vec<u64>,
    coverage: Vec<CoverageStats>,
}

impl CoreLanes {
    fn with_capacity(n: usize) -> Self {
        CoreLanes {
            ids: Vec::with_capacity(n),
            generators: Vec::with_capacity(n),
            l1i: Vec::with_capacity(n),
            l1d: Vec::with_capacity(n),
            timing: Vec::with_capacity(n),
            local_cycle: Vec::with_capacity(n),
            fetches: Vec::with_capacity(n),
            coverage: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, id: CoreId, generator: CoreTraceGenerator, config: &CmpConfig) {
        self.ids.push(id);
        self.generators.push(generator);
        self.l1i.push(SetAssocCache::new(config.l1i));
        self.l1d.push(SetAssocCache::new(config.l1d));
        self.timing.push(TimingAccumulator::new());
        self.local_cycle.push(0.0);
        self.fetches.push(0);
        self.coverage.push(CoverageStats::default());
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Borrows every lane of one core as a view with the per-core step logic.
    #[inline]
    fn core(&mut self, idx: usize) -> CoreView<'_> {
        CoreView {
            id: self.ids[idx],
            generator: &mut self.generators[idx],
            l1i: &mut self.l1i[idx],
            l1d: &mut self.l1d[idx],
            timing: &mut self.timing[idx],
            local_cycle: &mut self.local_cycle[idx],
            fetches: &mut self.fetches[idx],
            coverage: &mut self.coverage[idx],
        }
    }

    fn reset_measurement(&mut self) {
        for l1i in &mut self.l1i {
            // Prefetches issued during warm-up have long since arrived; clear
            // their arrival timestamps so they are not charged as late.
            l1i.for_each_meta_mut(|m| m.ready_at = 0.0);
            l1i.reset_stats();
        }
        for l1d in &mut self.l1d {
            l1d.reset_stats();
        }
        self.timing.fill_with(TimingAccumulator::new);
        self.local_cycle.fill(0.0);
        self.fetches.fill(0);
        self.coverage.fill(CoverageStats::default());
    }
}

/// A mutable view of one core's lanes, carrying the fetch/data handling and
/// prefetch-issue logic that used to live on the per-core struct.
pub(crate) struct CoreView<'a> {
    id: CoreId,
    generator: &'a mut CoreTraceGenerator,
    l1i: &'a mut SetAssocCache<L1iMeta>,
    l1d: &'a mut SetAssocCache<()>,
    timing: &'a mut TimingAccumulator,
    local_cycle: &'a mut f64,
    fetches: &'a mut u64,
    coverage: &'a mut CoverageStats,
}

impl CoreView<'_> {
    /// Advances this core by exactly one instruction-block fetch (plus any
    /// data references that precede it in the trace).
    ///
    /// Generic over the prefetcher type so each [`PrefetcherBank`] variant
    /// monomorphizes its own copy with the hooks statically dispatched (and,
    /// for the no-op baseline, inlined away entirely); `?Sized` keeps the
    /// `&mut dyn` reference path compilable for the equivalence tests.
    #[inline]
    fn step_one_fetch<P: InstructionPrefetcher + ?Sized>(
        &mut self,
        pf: &mut P,
        memory: &mut MemorySystem,
        env: &mut StepEnv,
    ) {
        // The whole batch up to and including the next fetch in one slice
        // copy; the buffer is scratch owned by the step environment.
        let mut events = std::mem::take(&mut env.events);
        self.generator.next_events_into(&mut events);
        for &event in &events {
            match event {
                TraceEvent::Data(d) => self.handle_data(memory, env, d.block),
                TraceEvent::Fetch(f) => self.handle_fetch(pf, memory, env, f.block, f.instructions),
            }
        }
        env.events = events;
    }

    #[inline]
    fn handle_data(&mut self, memory: &mut MemorySystem, env: &StepEnv, block: BlockAddr) {
        if self.l1d.access(block).is_hit() {
            return;
        }
        let raw =
            self.l1d.config().hit_latency + memory.round_trip(self.id, block, AccessClass::Demand);
        self.timing.data_stall(raw);
        *self.local_cycle += raw as f64 * env.timing.params().exposed_data_fraction();
        self.l1d.fill(block, ());
    }

    fn handle_fetch<P: InstructionPrefetcher + ?Sized>(
        &mut self,
        pf: &mut P,
        memory: &mut MemorySystem,
        env: &mut StepEnv,
        block: BlockAddr,
        instructions: u8,
    ) {
        *self.fetches += 1;
        let (access, meta) = self.l1i.access_meta(block);
        let hit = access.is_hit();

        if hit {
            // First use of a prefetched line: this was a miss in the baseline
            // that the prefetcher eliminated. If the prefetch was late, part
            // of its latency is still exposed.
            let miss_penalty_cap = memory.miss_penalty_cap();
            if let Some(meta) = meta {
                if meta.prefetched_unused {
                    meta.prefetched_unused = false;
                    // The decoupled front end runs ahead of retirement; only
                    // the part of the prefetch latency that exceeds that
                    // run-ahead window is exposed as a stall, and never more
                    // than a full demand miss would have cost.
                    let lateness = (meta.ready_at
                        - *self.local_cycle
                        - env.timing.params().fetch_runahead_cycles as f64)
                        .clamp(0.0, miss_penalty_cap);
                    self.coverage.covered += 1;
                    if lateness > 0.0 {
                        self.timing.fetch_stall(lateness as u64);
                        *self.local_cycle +=
                            lateness * env.timing.params().exposed_fetch_fraction();
                    }
                }
            }
        } else {
            // Prediction-only mode (Figure 6): ask whether the prefetcher
            // would have predicted this miss before its state reacts to it.
            if env.options.prediction_only && pf.covers(self.id, block) {
                self.coverage.predicted += 1;
            }
            let eliminated = env
                .options
                .miss_elimination_probability
                .map(|p| p > 0.0 && env.rng.gen_bool(p))
                .unwrap_or(false);
            if eliminated {
                self.coverage.covered += 1;
                self.fill_l1i(block, L1iMeta::default(), memory);
            } else {
                self.coverage.uncovered += 1;
                let raw = self.l1i.config().hit_latency
                    + memory.round_trip(self.id, block, AccessClass::Demand);
                self.timing.fetch_stall(raw);
                *self.local_cycle += raw as f64 * env.timing.params().exposed_fetch_fraction();
                self.fill_l1i(block, L1iMeta::default(), memory);
            }
        }

        // Prefetcher hooks: access outcome first, then the retire-order
        // stream. The candidate list lives in the step environment so the
        // per-fetch hooks append into a reused buffer instead of allocating.
        env.candidates.clear();
        pf.on_access(self.id, block, hit, memory.llc_mut(), &mut env.candidates);

        self.timing.retire_instructions(instructions as u64);
        *self.local_cycle += instructions as f64 * env.timing.params().base_cpi;

        pf.on_retire(self.id, block, memory.llc_mut(), &mut env.candidates);

        if !env.options.prediction_only {
            self.issue_prefetches(memory, &env.candidates);
        }
    }

    #[inline]
    fn fill_l1i(&mut self, block: BlockAddr, meta: L1iMeta, memory: &mut MemorySystem) {
        if let Some(evicted) = self.l1i.fill(block, meta) {
            if evicted.meta.prefetched_unused {
                // A prefetched block left the cache without ever being used:
                // an overprediction, and a useless LLC read (a "discard").
                self.coverage.overpredicted += 1;
                memory.llc_mut().record_traffic(AccessClass::Discard, 64);
            }
        }
    }

    fn issue_prefetches(&mut self, memory: &mut MemorySystem, candidates: &[PrefetchCandidate]) {
        for cand in candidates {
            if self.l1i.probe(cand.block) {
                continue;
            }
            let latency = memory.round_trip(self.id, cand.block, AccessClass::PrefetchUseful);
            let ready_at = *self.local_cycle + (cand.ready_delay + latency) as f64;
            self.fill_l1i(
                cand.block,
                L1iMeta {
                    prefetched_unused: true,
                    ready_at,
                },
                memory,
            );
        }
    }
}

/// The configured prefetcher(s) of a run, dispatched statically: one variant
/// per [`PrefetcherConfig`] family, so the stepping loop monomorphizes per
/// variant and the per-fetch `on_access`/`on_retire`/`covers` hooks are
/// direct (inlinable) calls instead of virtual ones through
/// `Box<dyn InstructionPrefetcher>`. The baseline's no-op hooks — half of
/// every deduplicated matrix's shared keys — compile away entirely.
pub(crate) enum PrefetcherBank {
    /// No prefetcher (the baseline).
    Null(NullPrefetcher),
    /// One next-line prefetcher shared by every core.
    NextLine(NextLinePrefetcher),
    /// One PIF instance holding all per-core private histories.
    Pif(Pif),
    /// SHIFT: one shared history per workload (consolidation gives each
    /// workload its own instance); `pf_of_core[i]` names core `i`'s unit.
    Shift {
        /// Per-workload SHIFT instances.
        units: Vec<Shift>,
        /// Core index → index into `units`.
        pf_of_core: Vec<usize>,
    },
    /// Hybrid: per-workload SHIFT units, each with a next-line fallback.
    ShiftNextLine {
        /// Per-workload fallback pairs.
        units: Vec<FallbackPrefetcher<Shift, NextLinePrefetcher>>,
        /// Core index → index into `units`.
        pf_of_core: Vec<usize>,
    },
    /// Hybrid: one confidence-gated PIF holding all per-core histories.
    GatedPif(ConfidenceGatedPrefetcher<Pif>),
    /// Hybrid: per-workload adaptive next-line/SHIFT selectors.
    AdaptiveNlShift {
        /// Per-workload adaptive pairs.
        units: Vec<AdaptivePrefetcher<NextLinePrefetcher, Shift>>,
        /// Core index → index into `units`.
        pf_of_core: Vec<usize>,
    },
    /// Per-workload SHIFT units behind bandwidth-throttled history ports.
    ThrottledShift {
        /// Per-workload throttled SHIFT units.
        units: Vec<ThrottledPrefetcher<Shift>>,
        /// Core index → index into `units`.
        pf_of_core: Vec<usize>,
    },
}

impl PrefetcherBank {
    /// The prefetcher serving core `core_idx`, as a trait object — the
    /// reference path reproducing the old per-fetch virtual dispatch, kept
    /// for the dispatch-equivalence tests.
    fn slot_dyn(&mut self, core_idx: usize) -> &mut dyn InstructionPrefetcher {
        match self {
            PrefetcherBank::Null(pf) => pf,
            PrefetcherBank::NextLine(pf) => pf,
            PrefetcherBank::Pif(pf) => pf,
            PrefetcherBank::Shift { units, pf_of_core } => &mut units[pf_of_core[core_idx]],
            PrefetcherBank::ShiftNextLine { units, pf_of_core } => &mut units[pf_of_core[core_idx]],
            PrefetcherBank::GatedPif(pf) => pf,
            PrefetcherBank::AdaptiveNlShift { units, pf_of_core } => {
                &mut units[pf_of_core[core_idx]]
            }
            PrefetcherBank::ThrottledShift { units, pf_of_core } => {
                &mut units[pf_of_core[core_idx]]
            }
        }
    }
}

/// One round-robin pass over all cores, `rounds` times, with the prefetcher
/// type statically known — the monomorphized inner loop every
/// [`PrefetcherBank`] variant of [`Engine::step_rounds`] expands to.
#[inline]
fn step_rounds_uniform<P: InstructionPrefetcher>(
    cores: &mut CoreLanes,
    memory: &mut MemorySystem,
    env: &mut StepEnv,
    pf: &mut P,
    rounds: usize,
) {
    for _ in 0..rounds {
        for idx in 0..cores.len() {
            cores.core(idx).step_one_fetch(pf, memory, env);
        }
    }
}

/// Round-robin stepping over per-workload prefetcher units (`pf_of_core`
/// routes each core to its unit), monomorphized per unit type — the shared
/// loop behind the SHIFT variant and every hybrid that wraps SHIFT.
#[inline]
fn step_rounds_units<P: InstructionPrefetcher>(
    cores: &mut CoreLanes,
    memory: &mut MemorySystem,
    env: &mut StepEnv,
    units: &mut [P],
    pf_of_core: &[usize],
    rounds: usize,
) {
    for _ in 0..rounds {
        for idx in 0..cores.len() {
            let pf = &mut units[pf_of_core[idx]];
            cores.core(idx).step_one_fetch(pf, memory, env);
        }
    }
}

/// The assembled simulation engine: all cores, the prefetchers, the shared
/// memory system, and the per-step environment.
///
/// Most callers go through [`Simulation::run`](crate::system::Simulation),
/// which drives a complete warm-up + measurement schedule. The engine is also
/// usable directly for *batched stepping*: [`Engine::step_rounds`] advances
/// every core by a block of fetches in one call, which is what the perf
/// harness uses to measure steady-state simulated-fetches/sec without paying
/// result-assembly costs per sample, and what `Simulation::run` itself is
/// built on. Any partition of the same total rounds into batches yields
/// bit-identical results — stepping is deterministic and carries no
/// per-batch state.
pub struct Engine {
    memory: MemorySystem,
    cores: CoreLanes,
    prefetchers: PrefetcherBank,
    env: StepEnv,
    prefetcher_label: String,
    workloads: Vec<String>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cores", &self.cores.len())
            .field("prefetcher", &self.prefetcher_label)
            .field("workloads", &self.workloads)
            .finish()
    }
}

impl Engine {
    /// Builds the full engine for one run: per-core generators and caches,
    /// the shared memory system, and the configured prefetcher(s).
    pub fn new(config: &CmpConfig, options: SimOptions, consolidation: &ConsolidationSpec) -> Self {
        let mut memory = MemorySystem::new(config);

        // Compile one program per workload and build per-core generators.
        let programs: Vec<Arc<WorkloadProgram>> = consolidation
            .workloads()
            .iter()
            .map(WorkloadProgram::build)
            .collect();
        let assignments = consolidation.assignments();
        let mut cores = CoreLanes::with_capacity(assignments.len());
        for a in assignments {
            cores.push(
                a.core,
                CoreTraceGenerator::with_program(
                    Arc::clone(&programs[a.workload.index()]),
                    a.core,
                    options.seed,
                ),
                config,
            );
        }

        let prefetchers = build_prefetchers(config, consolidation, &mut memory);

        Engine {
            memory,
            cores,
            prefetchers,
            env: StepEnv {
                timing: CoreTiming::new(config.core_kind),
                options,
                rng: SmallRng::seed_from_u64(options.seed ^ 0xF1E2_D3C4_B5A6_9788),
                candidates: Vec::new(),
                events: Vec::new(),
            },
            prefetcher_label: config.prefetcher.label(),
            workloads: consolidation
                .workloads()
                .iter()
                .map(|w| w.name.clone())
                .collect(),
        }
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Warm-up rounds (fetches per core) the run's scale prescribes.
    pub fn warmup_rounds(&self) -> usize {
        self.env.options.scale.warmup_fetches_per_core()
    }

    /// Measured rounds (fetches per core) the run's scale prescribes.
    pub fn measured_rounds(&self) -> usize {
        self.env.options.scale.fetches_per_core()
    }

    /// Advances every core by `rounds` instruction-block fetches in the
    /// round-robin interleaving, as one batched call.
    ///
    /// This is the batched stepping entry point: one dispatch amortizes over
    /// `rounds × cores` fetches, and splitting the same total across several
    /// calls is bit-identical to a single call (locked by the `runner`
    /// integration tests). The prefetcher variant is matched once per call,
    /// not once per fetch: each arm runs a loop monomorphized for its
    /// concrete prefetcher type, with all hooks statically dispatched.
    pub fn step_rounds(&mut self, rounds: usize) {
        let Engine {
            memory,
            cores,
            prefetchers,
            env,
            ..
        } = self;
        match prefetchers {
            PrefetcherBank::Null(pf) => step_rounds_uniform(cores, memory, env, pf, rounds),
            PrefetcherBank::NextLine(pf) => step_rounds_uniform(cores, memory, env, pf, rounds),
            PrefetcherBank::Pif(pf) => step_rounds_uniform(cores, memory, env, pf, rounds),
            PrefetcherBank::Shift { units, pf_of_core } => {
                step_rounds_units(cores, memory, env, units, pf_of_core, rounds)
            }
            PrefetcherBank::ShiftNextLine { units, pf_of_core } => {
                step_rounds_units(cores, memory, env, units, pf_of_core, rounds)
            }
            PrefetcherBank::GatedPif(pf) => step_rounds_uniform(cores, memory, env, pf, rounds),
            PrefetcherBank::AdaptiveNlShift { units, pf_of_core } => {
                step_rounds_units(cores, memory, env, units, pf_of_core, rounds)
            }
            PrefetcherBank::ThrottledShift { units, pf_of_core } => {
                step_rounds_units(cores, memory, env, units, pf_of_core, rounds)
            }
        }
    }

    /// [`step_rounds`](Self::step_rounds) through per-fetch virtual dispatch
    /// (`&mut dyn InstructionPrefetcher`), reproducing the engine's previous
    /// boxed-dyn stepping loop. Exists solely so the integration tests can
    /// lock the enum-dispatched loop bit-identical to the dynamic one; not
    /// part of the supported API.
    #[doc(hidden)]
    pub fn step_rounds_dyn(&mut self, rounds: usize) {
        for _ in 0..rounds {
            for idx in 0..self.cores.len() {
                let pf = self.prefetchers.slot_dyn(idx);
                self.cores
                    .core(idx)
                    .step_one_fetch(pf, &mut self.memory, &mut self.env);
            }
        }
    }

    /// Ends warm-up: clears all statistics so the measured interval starts
    /// from a warmed but unaccounted state (the paper's warmed-checkpoint
    /// methodology).
    pub fn begin_measurement(&mut self) {
        self.cores.reset_measurement();
        self.memory.reset_stats();
    }

    /// Assembles the aggregate results of the fetches stepped since
    /// [`begin_measurement`](Self::begin_measurement), consuming the engine.
    pub fn finish(self) -> RunResult {
        self.assemble_results()
    }

    /// Runs warm-up then measurement, and assembles the aggregate results.
    pub fn run(mut self) -> RunResult {
        self.step_rounds(self.warmup_rounds());
        self.begin_measurement();
        self.step_rounds(self.measured_rounds());
        self.finish()
    }

    fn assemble_results(self) -> RunResult {
        let Engine {
            memory,
            cores,
            env,
            prefetcher_label,
            workloads,
            ..
        } = self;
        let timing = &env.timing;

        let mut coverage = CoverageStats::default();
        let per_core: Vec<CoreResult> = (0..cores.len())
            .map(|idx| {
                let core_timing = &cores.timing[idx];
                coverage.merge(&cores.coverage[idx]);
                let cycles = timing.total_cycles(core_timing);
                CoreResult {
                    instructions: core_timing.instructions,
                    fetches: cores.fetches[idx],
                    cycles,
                    ipc: timing.ipc(core_timing),
                    raw_fetch_stall_cycles: core_timing.raw_fetch_stall_cycles,
                    raw_data_stall_cycles: core_timing.raw_data_stall_cycles,
                    l1i: *cores.l1i[idx].stats(),
                    l1d: *cores.l1d[idx].stats(),
                    coverage: cores.coverage[idx],
                }
            })
            .collect();

        let MemorySystem { llc, mesh, .. } = memory;
        let traffic = llc.traffic().clone();
        let history_block_accesses =
            traffic.count(AccessClass::HistoryRead) + traffic.count(AccessClass::HistoryWrite);
        let index_accesses = traffic.count(AccessClass::IndexUpdate);
        // History and index traffic travels over the mesh between the
        // requesting tile and the home bank; estimate its flit-hop cost with
        // the mesh's average hop distance (block transfers are 4 data flits +
        // 1 header; index updates are a single flit).
        let avg_hops =
            mesh.average_round_trip_latency(0) / (2.0 * mesh.config().hop_latency as f64);
        let overhead_flit_hops =
            ((history_block_accesses + traffic.count(AccessClass::Discard)) as f64 * 5.0 * avg_hops
                + index_accesses as f64 * avg_hops) as u64;

        RunResult {
            prefetcher: prefetcher_label,
            workloads,
            per_core,
            coverage,
            llc_traffic: traffic,
            llc: llc.stats(),
            overhead_flit_hops,
            history_block_accesses,
            index_accesses,
        }
    }
}

/// Builds the prefetcher(s): one instance for the whole CMP, except for SHIFT
/// under consolidation where each workload gets its own shared history and
/// generator core.
fn build_prefetchers(
    config: &CmpConfig,
    consolidation: &ConsolidationSpec,
    memory: &mut MemorySystem,
) -> PrefetcherBank {
    let cores = config.cores;
    match &config.prefetcher {
        PrefetcherConfig::None => PrefetcherBank::Null(NullPrefetcher::new()),
        PrefetcherConfig::NextLine { degree } => {
            PrefetcherBank::NextLine(NextLinePrefetcher::new(*degree, cores))
        }
        PrefetcherConfig::Pif(cfg) => PrefetcherBank::Pif(Pif::new(*cfg, cores)),
        PrefetcherConfig::Shift {
            history_records,
            mode,
        } => {
            let (units, pf_of_core) =
                build_shift_units(config, consolidation, memory, *history_records, *mode);
            PrefetcherBank::Shift { units, pf_of_core }
        }
        PrefetcherConfig::ShiftNextLine {
            history_records,
            mode,
            degree,
        } => {
            let (shifts, pf_of_core) =
                build_shift_units(config, consolidation, memory, *history_records, *mode);
            // Each workload's SHIFT gets its own next-line fallback; the
            // fallback is sized for the full CMP since any of the workload's
            // cores may fetch through it.
            let units = shifts
                .into_iter()
                .map(|s| FallbackPrefetcher::new(s, NextLinePrefetcher::new(*degree, cores)))
                .collect();
            PrefetcherBank::ShiftNextLine { units, pf_of_core }
        }
        PrefetcherConfig::GatedPif { config: cfg, gate } => PrefetcherBank::GatedPif(
            ConfidenceGatedPrefetcher::new(Pif::new(*cfg, cores), *gate, cores),
        ),
        PrefetcherConfig::AdaptiveNlShift {
            history_records,
            mode,
            adapt,
        } => {
            let (shifts, pf_of_core) =
                build_shift_units(config, consolidation, memory, *history_records, *mode);
            let units = shifts
                .into_iter()
                .map(|s| {
                    AdaptivePrefetcher::new(NextLinePrefetcher::new(1, cores), s, *adapt, cores)
                })
                .collect();
            PrefetcherBank::AdaptiveNlShift { units, pf_of_core }
        }
        PrefetcherConfig::ThrottledShift {
            history_records,
            mode,
            port,
        } => {
            let (shifts, pf_of_core) =
                build_shift_units(config, consolidation, memory, *history_records, *mode);
            let units = shifts
                .into_iter()
                .map(|s| ThrottledPrefetcher::new(s, *port))
                .collect();
            PrefetcherBank::ThrottledShift { units, pf_of_core }
        }
    }
}

/// Builds the per-workload SHIFT units: one shared history per workload,
/// generated by the first core of that workload, embedded at a distinct LLC
/// window. Shared by the standalone SHIFT bank and every hybrid that wraps
/// SHIFT, so the wrapped units are bit-identical to the standalone ones.
fn build_shift_units(
    config: &CmpConfig,
    consolidation: &ConsolidationSpec,
    memory: &mut MemorySystem,
    history_records: usize,
    mode: shift_core::ShiftMode,
) -> (Vec<Shift>, Vec<usize>) {
    let cores = config.cores;
    let n_workloads = consolidation.workloads().len();
    let mut units: Vec<Shift> = Vec::with_capacity(n_workloads);
    let mut pf_of_core = vec![0usize; cores as usize];
    for w in 0..n_workloads {
        let workload_cores = consolidation.cores_of(shift_types::WorkloadId::new(w as u8));
        let generator = workload_cores[0];
        let history_base = BlockAddr::new(0x7000_0000 + (w as u64) * 0x1_0000);
        let mut cfg = ShiftConfig::virtualized_micro13(generator, history_base);
        cfg.history_records = history_records;
        cfg.index_entries = history_records.max(16);
        cfg.mode = mode;
        cfg.noc_round_trip = memory.mesh().average_round_trip_latency(0).round() as u64;
        cfg.llc_capacity_blocks = config.llc.capacity_blocks();
        let mut shift = Shift::new(cfg, cores);
        shift.install(memory.llc_mut());
        for c in workload_cores {
            pf_of_core[c.index()] = units.len();
        }
        units.push(shift);
    }
    (units, pf_of_core)
}
