//! Sharding equivalence and negative-path tests for the plan / execute /
//! merge pipeline.
//!
//! The property at the heart of the sharded sweep: for *any* matrix and
//! *any* shard count, executing every shard into its own directory and
//! merging yields outcomes bit-identical to a serial in-process execution.
//! The negative tests pin down what the merge must reject: missing shards,
//! duplicated outcome directories, and outcomes from a foreign sweep.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use shift_sim::{Execution, PrefetcherConfig, RunMatrix, RunStore, ShardSpec, StoreError};
use shift_trace::{presets, Scale};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-sim-shard-test-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The pool of run ingredients property cases draw from.
fn prefetcher(idx: u64) -> PrefetcherConfig {
    match idx % 4 {
        0 => PrefetcherConfig::None,
        1 => PrefetcherConfig::next_line(),
        2 => PrefetcherConfig::pif_2k(),
        _ => PrefetcherConfig::shift_virtualized(),
    }
}

fn build_matrix(entries: &[(u64, u64, u64)]) -> (RunMatrix, Vec<shift_sim::RunHandle>) {
    let workloads = [
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    let mut matrix = RunMatrix::new();
    let handles = entries
        .iter()
        .map(|&(w, p, seed)| {
            matrix.standalone(
                &workloads[(w % 2) as usize],
                prefetcher(p),
                2,
                Scale::Test,
                seed % 3,
            )
        })
        .collect();
    (matrix, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For random matrices (with random duplicates, which must dedup) and any
    /// shard count in 1..=5, executing all N shards and merging is
    /// bit-identical to a serial execution.
    #[test]
    fn sharded_execution_merges_bit_identical_to_serial(
        entries in proptest::collection::vec((0u64..2, 0u64..4, 0u64..3), 1..5),
        total in 1usize..=5,
    ) {
        let (matrix, handles) = build_matrix(&entries);
        let serial = Execution::new(&matrix).serial().run().unwrap().into_outcomes();

        let dirs: Vec<PathBuf> = (1..=total)
            .map(|k| temp_dir(&format!("prop-{k}-of-{total}")))
            .collect();
        let mut sliced = 0usize;
        for (k, dir) in dirs.iter().enumerate() {
            let output = Execution::new(&matrix)
                .shard(ShardSpec::new(k + 1, total))
                .dir(dir)
                .threads(2)
                .run()
                .expect("shard executes");
            sliced += output.report().planned;
        }
        prop_assert_eq!(sliced, matrix.len(), "shards must partition the matrix");

        let merged = RunStore::new(dirs.iter().cloned())
            .load(&matrix)
            .expect("merge covers the sweep");
        prop_assert_eq!(merged.len(), serial.len());
        for &handle in &handles {
            prop_assert_eq!(&merged[handle], &serial[handle]);
        }
        // The strongest form: every field of every result, via Debug's
        // shortest round-trip float rendering.
        prop_assert_eq!(format!("{merged:?}"), format!("{serial:?}"));

        for dir in dirs {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

#[test]
fn missing_shard_is_detected() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (0, 1, 0), (1, 2, 1), (1, 3, 2)]);
    let dir = temp_dir("missing");
    // Execute only shard 1 of 3.
    Execution::new(&matrix)
        .shard(ShardSpec::new(1, 3))
        .dir(&dir)
        .serial()
        .run()
        .unwrap();
    let err = RunStore::new([&dir]).load(&matrix).unwrap_err();
    match err {
        StoreError::MissingRuns { missing, planned } => {
            assert_eq!(planned, matrix.len());
            assert!(!missing.is_empty() && missing.len() < planned);
            // The missing ids are exactly the other shards' slices, in
            // canonical order.
            let expected: Vec<_> = matrix
                .canonical_order()
                .into_iter()
                .enumerate()
                .filter(|&(rank, _)| !ShardSpec::new(1, 3).selects(rank))
                .map(|(_, slot)| matrix.key_ids()[slot])
                .collect();
            assert_eq!(missing, expected);
        }
        other => panic!("expected MissingRuns, got {other}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_outcomes_are_rejected() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1)]);
    let dir = temp_dir("duplicate");
    Execution::new(&matrix)
        .shard(ShardSpec::full())
        .dir(&dir)
        .serial()
        .run()
        .unwrap();
    // The same directory listed twice presents every run twice.
    let err = RunStore::new([dir.clone(), dir.clone()])
        .load(&matrix)
        .unwrap_err();
    assert!(
        matches!(err, StoreError::DuplicateKey { .. }),
        "expected DuplicateKey, got {err}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_matrix_outcomes_are_rejected() {
    // Shard a 4-core sweep, then try to merge it into a 2-core plan: same
    // workload, different sweep — the fingerprints differ.
    let w = presets::tiny();
    let mut four_core = RunMatrix::new();
    four_core.standalone(&w, PrefetcherConfig::None, 4, Scale::Test, 1);
    let dir = temp_dir("foreign");
    Execution::new(&four_core)
        .shard(ShardSpec::full())
        .dir(&dir)
        .serial()
        .run()
        .unwrap();

    let mut two_core = RunMatrix::new();
    two_core.standalone(&w, PrefetcherConfig::None, 2, Scale::Test, 1);
    let err = RunStore::new([&dir]).load(&two_core).unwrap_err();
    match err {
        StoreError::ForeignMatrix {
            expected, found, ..
        } => {
            assert_eq!(expected, two_core.fingerprint());
            assert_eq!(found, four_core.fingerprint());
            assert_ne!(expected, found);
        }
        other => panic!("expected ForeignMatrix, got {other}"),
    }
    fs::remove_dir_all(&dir).unwrap();
}
