//! Enum dispatch ≡ dynamic dispatch.
//!
//! `Engine::step_rounds` matches the prefetcher variant once per call and
//! runs a loop monomorphized for the concrete prefetcher type; the hidden
//! `Engine::step_rounds_dyn` reproduces the engine's previous per-fetch
//! `&mut dyn InstructionPrefetcher` virtual dispatch over the same state.
//! These tests lock the two loops bit-identical — same `RunResult` down to
//! every counter and float — for every prefetcher family, including SHIFT
//! under consolidation (multiple per-workload units), and for interleaved
//! mixes of the two stepping entry points.

use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift_trace::{presets, ConsolidationSpec, Scale};

/// Steps two identical engines the same number of rounds — one through the
/// enum-dispatched loop, one through the dynamic-dispatch reference loop —
/// and requires identical results.
fn assert_dispatch_equivalence(prefetcher: PrefetcherConfig, seed: u64) {
    let label = prefetcher.label();
    let config = CmpConfig::micro13(4, prefetcher);
    let options = SimOptions::new(Scale::Test, seed);
    let workload = presets::tiny();

    let sim = Simulation::standalone(config, workload.clone(), options);
    let mut enum_engine = sim.engine();
    let mut dyn_engine = sim.engine();

    let rounds = 400;
    enum_engine.step_rounds(rounds);
    dyn_engine.step_rounds_dyn(rounds);
    enum_engine.begin_measurement();
    dyn_engine.begin_measurement();
    enum_engine.step_rounds(rounds);
    dyn_engine.step_rounds_dyn(rounds);

    assert_eq!(
        enum_engine.finish(),
        dyn_engine.finish(),
        "enum vs dyn dispatch diverged for {label}"
    );
}

#[test]
fn every_prefetcher_family_is_dispatch_equivalent() {
    for (seed, prefetcher) in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::pif_2k(),
        PrefetcherConfig::shift_virtualized(),
        PrefetcherConfig::shift_dedicated(),
    ]
    .into_iter()
    .enumerate()
    {
        assert_dispatch_equivalence(prefetcher, seed as u64 + 11);
    }
}

#[test]
fn every_hybrid_family_is_dispatch_equivalent() {
    // The PR that added the hybrid bank variants gets the same lock as the
    // original four: monomorphized stepping must match the dyn reference
    // path bit-identically for every composed design.
    for (seed, prefetcher) in [
        PrefetcherConfig::shift_next_line(),
        PrefetcherConfig::gated_pif_32k(),
        PrefetcherConfig::adaptive_nl_shift(),
        PrefetcherConfig::shift_throttled(4),
        PrefetcherConfig::shift_throttled(1),
    ]
    .into_iter()
    .enumerate()
    {
        assert_dispatch_equivalence(prefetcher, seed as u64 + 41);
    }
}

#[test]
fn consolidated_hybrids_are_dispatch_equivalent() {
    // Consolidation gives the unit-routed hybrids several units (one wrapped
    // SHIFT per workload) — the configuration where `pf_of_core` routing in
    // the new bank variants actually matters.
    for (seed, prefetcher) in [
        PrefetcherConfig::shift_next_line(),
        PrefetcherConfig::adaptive_nl_shift(),
        PrefetcherConfig::shift_throttled(2),
    ]
    .into_iter()
    .enumerate()
    {
        let spec = ConsolidationSpec::even_split(vec![presets::tiny(), presets::web_frontend()], 4);
        let config = CmpConfig::micro13(4, prefetcher);
        let options = SimOptions::new(Scale::Test, seed as u64 + 53);

        let sim = Simulation::consolidated(config, spec, options);
        let mut enum_engine = sim.engine();
        let mut dyn_engine = sim.engine();
        enum_engine.step_rounds(500);
        dyn_engine.step_rounds_dyn(500);
        assert_eq!(
            enum_engine.finish(),
            dyn_engine.finish(),
            "enum vs dyn dispatch diverged for consolidated {}",
            prefetcher.label()
        );
    }
}

#[test]
fn consolidated_shift_is_dispatch_equivalent() {
    // Consolidation is the one configuration with several prefetcher units
    // (one SHIFT per workload), i.e. where the per-core unit selection
    // actually routes: cover it explicitly.
    let spec = ConsolidationSpec::even_split(vec![presets::tiny(), presets::web_frontend()], 4);
    let config = CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized());
    let options = SimOptions::new(Scale::Test, 29);

    let sim = Simulation::consolidated(config, spec.clone(), options);
    let mut enum_engine = sim.engine();
    let mut dyn_engine = sim.engine();
    enum_engine.step_rounds(500);
    dyn_engine.step_rounds_dyn(500);
    assert_eq!(enum_engine.finish(), dyn_engine.finish());
}

#[test]
fn interleaving_enum_and_dyn_stepping_is_equivalent() {
    // Both entry points drive the same state machine, so any interleaving of
    // the two must land on the same results as either alone.
    let config = CmpConfig::micro13(2, PrefetcherConfig::shift_virtualized());
    let options = SimOptions::new(Scale::Test, 3);
    let workload = presets::tiny();
    let sim = Simulation::standalone(config, workload, options);

    let mut mixed = sim.engine();
    let mut pure = sim.engine();
    mixed.step_rounds(150);
    mixed.step_rounds_dyn(250);
    mixed.step_rounds(100);
    pure.step_rounds(500);
    assert_eq!(mixed.finish(), pure.finish());
}
