//! Diagnostic harness (ignored by default): prints per-prefetcher coverage,
//! traffic, and timing breakdowns on the tiny workload. Run with
//! `cargo test -p shift-sim --test diag -- --ignored --nocapture`.

use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift_trace::{presets, Scale};
use shift_types::AccessClass;

fn run(p: PrefetcherConfig) -> shift_sim::RunResult {
    let config = CmpConfig::micro13(4, p);
    Simulation::standalone(config, presets::tiny(), SimOptions::new(Scale::Test, 7)).run()
}

#[test]
#[ignore]
fn diag() {
    for p in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::pif_32k(),
        PrefetcherConfig::shift_virtualized(),
        PrefetcherConfig::shift_zero_latency(),
    ] {
        let r = run(p);
        let c0 = &r.per_core[0];
        println!("{:<16} thr={:.3} cov={:.3} ovp={:.3} covered={} uncovered={} l1i_miss={} mpki={:.1} stall={} instr={} demand={} pf={} discard={} hr={}",
            r.prefetcher, r.throughput(), r.coverage.coverage(), r.coverage.overprediction(),
            r.coverage.covered, r.coverage.uncovered,
            r.per_core.iter().map(|c| c.l1i.misses).sum::<u64>(),
            r.l1i_mpki(),
            c0.cycles as u64,
            r.total_instructions(),
            r.llc_traffic.count(AccessClass::Demand),
            r.llc_traffic.count(AccessClass::PrefetchUseful),
            r.llc_traffic.count(AccessClass::Discard),
            r.llc_traffic.count(AccessClass::HistoryRead));
    }
}

#[test]
#[ignore]
fn diag_timing() {
    for p in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::pif_32k(),
    ] {
        let r = run(p);
        let c0 = &r.per_core[0];
        // reconstruct stalls: cycles = instr*0.72 + fetch*0.8 + data*0.45
        println!("{:<16} cycles={:.0} instr={} l1i_miss={} l1d_miss={} ipc={:.3} raw_fetch={} raw_data={}",
            r.prefetcher, c0.cycles, c0.instructions, c0.l1i.misses, c0.l1d.misses, c0.ipc, c0.raw_fetch_stall_cycles, c0.raw_data_stall_cycles);
    }
}
