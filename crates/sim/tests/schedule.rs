//! Measure-then-assign scheduling tests: the cost model must be a total
//! order, cost-ordered drains must merge byte-identical to a serial
//! execution for any fleet shape, and — the headline — a fleet with one
//! slow worker must finish strictly sooner under
//! [`SchedulePolicy::CostOrdered`] than under the canonical claim order.
//!
//! The makespan scenario stages the pathology the policy exists for: the
//! slowest machine in the fleet grabbing the most expensive run. Three
//! 12-core runs dwarf six 2-core runs (the canonical key order happens to
//! put the big runs first), and the slow worker polls the queue alone for a
//! head start. Canonically it claims a big run and the whole sweep waits on
//! it; cost-ordered, its advertised throughput defers everything over the
//! slowness cutoff, so it picks up small runs while the fast workers take
//! the head of the ranked list.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use shift_sim::schedule::rank_by_cost;
use shift_sim::{
    CostModel, Execution, ExecutionReport, PrefetcherConfig, QueueConfig, RunMatrix, RunOutcomes,
    RunStore, SchedulePolicy,
};
use shift_trace::{presets, Scale};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-sim-schedule-test-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The pool of run ingredients property cases draw from.
fn prefetcher(idx: u64) -> PrefetcherConfig {
    match idx % 4 {
        0 => PrefetcherConfig::None,
        1 => PrefetcherConfig::next_line(),
        2 => PrefetcherConfig::pif_2k(),
        _ => PrefetcherConfig::shift_virtualized(),
    }
}

fn build_matrix(entries: &[(u64, u64, u64)]) -> RunMatrix {
    let workloads = [
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    let mut matrix = RunMatrix::new();
    for &(w, p, seed) in entries {
        matrix.standalone(
            &workloads[(w % 2) as usize],
            prefetcher(p),
            2,
            Scale::Test,
            seed % 3,
        );
    }
    matrix
}

fn serial_reference(matrix: &RunMatrix) -> RunOutcomes {
    Execution::new(matrix)
        .serial()
        .run()
        .expect("serial reference")
        .into_outcomes()
}

fn assert_no_leftover_locks(dir: &Path) {
    for entry in fs::read_dir(dir).expect("outcome dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            name.starts_with("run-"),
            "leftover non-outcome file after drain: {name}"
        );
    }
}

/// The cost ranking is a total order: deterministic, cost-descending, and
/// tie-broken by ascending `RunKeyId` so equal-cost runs never reorder
/// between hosts.
#[test]
fn cost_ranking_is_a_total_order_with_stable_ties() {
    let workload = presets::tiny();
    let mut matrix = RunMatrix::new();
    // Three seeds of the same shape: identical cost, distinct key ids.
    for seed in 0..3 {
        matrix.standalone(&workload, PrefetcherConfig::None, 2, Scale::Test, seed);
    }
    // And one run that dwarfs them.
    matrix.standalone(&workload, PrefetcherConfig::None, 8, Scale::Test, 0);

    let model = CostModel::default();
    let order = rank_by_cost(&model, &matrix);

    // A permutation of the slots...
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (0..matrix.len()).collect::<Vec<_>>());

    // ...deterministic across calls...
    assert_eq!(order, rank_by_cost(&model, &matrix));

    // ...cost-descending, with equal costs ordered by ascending key id.
    let keys = matrix.keys();
    let ids = matrix.key_ids();
    for pair in order.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (cost_a, cost_b) = (model.cost(&keys[a]), model.cost(&keys[b]));
        assert!(
            cost_a > cost_b || (cost_a == cost_b && ids[a] < ids[b]),
            "rank violates the (cost desc, key id asc) total order: \
             {cost_a} @ {} before {cost_b} @ {}",
            ids[a],
            ids[b]
        );
    }
    assert_eq!(order[0], matrix.len() - 1, "the 8-core run ranks first");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For arbitrary matrices, arbitrary per-worker throughput shapes
    /// (throttle, advertised rate, slowness cutoff), and any fleet size in
    /// 1..=4, a cost-ordered drain merges byte-identical to a serial
    /// execution and leaves no locks behind.
    #[test]
    fn cost_ordered_fleets_merge_bit_identical_to_serial(
        entries in proptest::collection::vec((0u64..2, 0u64..4, 0u64..3), 1..5),
        throttles in proptest::collection::vec(0u64..20, 4..5),
        // 0 means "no advertised rate" (calibration unknown at start).
        rates in proptest::collection::vec(0u64..10_000_000, 4..5),
        cutoffs_ms in proptest::collection::vec(1u64..5_000, 4..5),
        workers in 1usize..=4,
    ) {
        let matrix = build_matrix(&entries);
        let serial = serial_reference(&matrix);
        let dir = temp_dir(&format!("prop-{workers}"));

        let reports: Vec<ExecutionReport> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..workers)
                .map(|w| {
                    let matrix = &matrix;
                    let dir = dir.clone();
                    let mut config = QueueConfig::new(format!("sched-w{w}"));
                    config.poll = Duration::from_millis(10);
                    config.policy = SchedulePolicy::CostOrdered;
                    config.throttle_ns_per_unit = throttles[w];
                    config.initial_rate = (rates[w] > 0).then_some(rates[w]);
                    config.slow_cutoff = Duration::from_millis(cutoffs_ms[w]);
                    scope.spawn(move || {
                        *Execution::new(matrix)
                            .queue(config)
                            .dir(&dir)
                            .serial()
                            .run()
                            .expect("queue worker")
                            .report()
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker thread")).collect()
        });

        let executed_total: usize = reports.iter().map(|r| r.sources.executed).sum();
        prop_assert_eq!(executed_total, matrix.len(), "each run executes exactly once");
        for report in &reports {
            prop_assert!(report.complete);
            prop_assert_eq!(report.sources.reclaimed, 0, "no stale locks among live workers");
        }
        assert_no_leftover_locks(&dir);

        let merged = RunStore::new([&dir]).load(&matrix).expect("merge");
        prop_assert_eq!(format!("{merged:?}"), format!("{serial:?}"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// The makespan matrix: three 12-core runs (~6x the work of a small run)
/// ahead of six 2-core runs in canonical order.
fn makespan_matrix() -> RunMatrix {
    let workload = presets::tiny();
    let mut matrix = RunMatrix::new();
    for seed in 0..3 {
        matrix.standalone(&workload, PrefetcherConfig::None, 12, Scale::Test, seed);
    }
    for seed in 0..6 {
        matrix.standalone(&workload, PrefetcherConfig::None, 2, Scale::Test, seed);
    }
    matrix
}

/// Sleep per weighted fetch unit that makes a big run cost ~3.6 s of
/// throttle on the slow worker and a small run ~0.6 s.
const SLOW_THROTTLE_NS_PER_UNIT: u64 = 6_000;

/// Drains `matrix` with a 4-worker fleet — one sleep-throttled slow worker
/// that gets a head start on the queue, three unthrottled fast ones — and
/// returns the fleet's makespan.
fn drain_fleet(matrix: &RunMatrix, dir: &Path, policy: SchedulePolicy) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        let slow = scope.spawn(move || {
            let mut config = QueueConfig::new("slow".to_owned());
            config.poll = Duration::from_millis(10);
            config.policy = policy;
            config.throttle_ns_per_unit = SLOW_THROTTLE_NS_PER_UNIT;
            // The slow worker advertises its throughput up front, as a
            // restarted worker recovering its calibration would: 150k
            // weighted fetch units per second puts a big run (~600k units)
            // far over the cutoff and a small one (~100k) well under it.
            config.initial_rate = Some(150_000);
            config.slow_cutoff = Duration::from_millis(1_500);
            let report = *Execution::new(matrix)
                .queue(config)
                .dir(dir)
                .serial()
                .run()
                .expect("slow worker")
                .report();
            assert!(report.complete);
        });
        // The head start guarantees the slow worker faces the full queue
        // alone — the exact situation where claim order decides makespan.
        std::thread::sleep(Duration::from_millis(200));
        let fast: Vec<_> = (0..3)
            .map(|w| {
                scope.spawn(move || {
                    let mut config = QueueConfig::new(format!("fast-{w}"));
                    config.poll = Duration::from_millis(10);
                    config.policy = policy;
                    let report = *Execution::new(matrix)
                        .queue(config)
                        .dir(dir)
                        .serial()
                        .run()
                        .expect("fast worker")
                        .report();
                    assert!(report.complete);
                })
            })
            .collect();
        slow.join().expect("slow worker thread");
        for join in fast {
            join.join().expect("fast worker thread");
        }
    });
    start.elapsed()
}

/// The tentpole acceptance: with one throttled worker in a 4-worker fleet,
/// `CostOrdered` yields a strictly lower makespan than the canonical claim
/// order, and the merged outcomes stay byte-identical to a serial execution.
#[test]
fn cost_ordered_beats_canonical_makespan_with_one_slow_worker() {
    let matrix = makespan_matrix();
    let serial = serial_reference(&matrix);

    // Canonical order puts the 12-core runs at the head of the queue, so
    // the slow worker's head start means it claims a big run and throttles
    // the whole sweep behind its ~3.6 s of sleep.
    let canonical_dir = temp_dir("makespan-canonical");
    let canonical = drain_fleet(&matrix, &canonical_dir, SchedulePolicy::Canonical);

    // Cost-ordered, the same slow worker defers every run whose estimated
    // duration exceeds its cutoff: it picks up small runs (~0.6 s each) and
    // the fast workers take the expensive head of the ranked list.
    let cost_dir = temp_dir("makespan-cost");
    let cost_ordered = drain_fleet(&matrix, &cost_dir, SchedulePolicy::CostOrdered);

    eprintln!(
        "makespan: canonical {:.2}s, cost-ordered {:.2}s",
        canonical.as_secs_f64(),
        cost_ordered.as_secs_f64()
    );
    assert!(
        cost_ordered < canonical,
        "cost-ordered makespan {cost_ordered:?} must beat canonical {canonical:?}"
    );
    // The slow worker's big-run throttle alone is ~3.6 s; cost-ordered the
    // fleet never waits on it, so the gap is wide, not a timing accident.
    assert!(
        canonical >= Duration::from_millis(3_600),
        "canonical drain should be throttled by the slow worker's big run, \
         finished in {canonical:?}"
    );

    // Scheduling changed *when* runs executed, never *what* they computed:
    // both drains merge byte-identical to the serial reference.
    for dir in [&canonical_dir, &cost_dir] {
        assert_no_leftover_locks(dir);
        let merged = RunStore::new([dir]).load(&matrix).expect("merge");
        assert_eq!(format!("{merged:?}"), format!("{serial:?}"));
        fs::remove_dir_all(dir).unwrap();
    }
}
