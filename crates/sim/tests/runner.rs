//! Integration tests for the sweep engine: parallel execution must be
//! bit-identical to serial execution, and shared runs must be memoized.

use shift_sim::experiments::speedup_comparison::speedup_comparison_with;
use shift_sim::{CmpConfig, PrefetcherConfig, RunMatrix, SimOptions};
use shift_trace::{presets, ConsolidationSpec, Scale};

/// Builds the matrix a figure-8-style sweep would: two workloads, a
/// consolidated mix, and several prefetchers sharing one baseline each.
fn figure_sized_matrix() -> RunMatrix {
    let mut matrix = RunMatrix::new();
    let workloads = [
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    for workload in &workloads {
        for prefetcher in [
            PrefetcherConfig::None,
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::shift_virtualized(),
        ] {
            matrix.standalone(workload, prefetcher, 4, Scale::Test, 21);
        }
    }
    let mix = ConsolidationSpec::even_split(workloads.to_vec(), 4);
    matrix.consolidated(
        CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized()),
        &mix,
        SimOptions::new(Scale::Test, 21),
    );
    matrix
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let matrix = figure_sized_matrix();
    assert_eq!(matrix.len(), 9);

    let serial = matrix.execute_serial();
    let parallel = matrix.execute_with_threads(4);
    let default = matrix.execute();

    assert_eq!(serial.len(), parallel.len());
    // RunResult has no Eq (it carries f64 fields), but its Debug form renders
    // floats in shortest round-trip notation, so equal strings mean
    // bit-identical results for every counter and cycle count.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert_eq!(format!("{serial:?}"), format!("{default:?}"));
}

#[test]
fn repeated_executions_are_deterministic() {
    let matrix = figure_sized_matrix();
    let first = matrix.execute();
    let second = matrix.execute();
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
}

#[test]
fn driver_results_are_identical_across_thread_counts() {
    let workloads = [presets::tiny()];
    let prefetchers = [
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ];
    // SHIFT_THREADS only changes the worker pool, never the results; pin the
    // executor to one thread and to many via the env knob for a full driver.
    std::env::set_var("SHIFT_THREADS", "1");
    let serial = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 33);
    std::env::set_var("SHIFT_THREADS", "8");
    let parallel = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 33);
    std::env::remove_var("SHIFT_THREADS");

    assert_eq!(format!("{:?}", serial.rows), format!("{:?}", parallel.rows));
    assert_eq!(serial.geomean, parallel.geomean);
}
