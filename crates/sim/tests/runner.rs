//! Integration tests for the sweep engine: parallel execution must be
//! bit-identical to serial execution, and shared runs must be memoized.

use shift_sim::experiments::speedup_comparison::speedup_comparison_with;
use shift_sim::{CmpConfig, Execution, PrefetcherConfig, RunMatrix, SimOptions, Simulation};
use shift_trace::{presets, ConsolidationSpec, Scale};

/// Builds the matrix a figure-8-style sweep would: two workloads, a
/// consolidated mix, and several prefetchers sharing one baseline each.
fn figure_sized_matrix() -> RunMatrix {
    let mut matrix = RunMatrix::new();
    let workloads = [
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    for workload in &workloads {
        for prefetcher in [
            PrefetcherConfig::None,
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_2k(),
            PrefetcherConfig::shift_virtualized(),
        ] {
            matrix.standalone(workload, prefetcher, 4, Scale::Test, 21);
        }
    }
    let mix = ConsolidationSpec::even_split(workloads.to_vec(), 4);
    matrix.consolidated(
        CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized()),
        &mix,
        SimOptions::new(Scale::Test, 21),
    );
    matrix
}

#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let matrix = figure_sized_matrix();
    assert_eq!(matrix.len(), 9);

    let serial = Execution::new(&matrix)
        .serial()
        .run()
        .unwrap()
        .into_outcomes();
    let parallel = Execution::new(&matrix)
        .threads(4)
        .run()
        .unwrap()
        .into_outcomes();
    let default = matrix.execute();

    assert_eq!(serial.len(), parallel.len());
    // RunResult has no Eq (it carries f64 fields), but its Debug form renders
    // floats in shortest round-trip notation, so equal strings mean
    // bit-identical results for every counter and cycle count.
    assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
    assert_eq!(format!("{serial:?}"), format!("{default:?}"));
}

#[test]
fn repeated_executions_are_deterministic() {
    let matrix = figure_sized_matrix();
    let first = matrix.execute();
    let second = matrix.execute();
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
}

#[test]
fn batched_stepping_is_bit_identical_to_run() {
    // The batched entry point must be a pure partitioning of the same
    // schedule: stepping warm-up and measurement in uneven chunks yields the
    // exact result `Simulation::run` assembles in one go, for both SHIFT and
    // PIF engines.
    for prefetcher in [
        PrefetcherConfig::shift_virtualized(),
        PrefetcherConfig::pif_32k(),
    ] {
        let config = CmpConfig::micro13(4, prefetcher);
        let options = SimOptions::new(Scale::Test, 55);
        let sim = Simulation::standalone(config, presets::tiny(), options);

        let whole = sim.run();

        let mut engine = sim.engine();
        let mut remaining = engine.warmup_rounds();
        while remaining > 0 {
            let chunk = remaining.min(777);
            engine.step_rounds(chunk);
            remaining -= chunk;
        }
        engine.begin_measurement();
        let mut remaining = engine.measured_rounds();
        while remaining > 0 {
            let chunk = remaining.min(1_024);
            engine.step_rounds(chunk);
            remaining -= chunk;
        }
        let chunked = engine.finish();

        assert_eq!(format!("{whole:?}"), format!("{chunked:?}"));
    }
}

#[test]
fn batched_stepping_matches_matrix_outcomes_across_thread_counts() {
    // `SHIFT_THREADS=1` vs `=4` determinism, extended to the batched path: a
    // hand-stepped engine must reproduce the matrix-executed result at any
    // worker count.
    let workload = presets::tiny();
    let mut matrix = RunMatrix::new();
    let handle = matrix.standalone(
        &workload,
        PrefetcherConfig::shift_virtualized(),
        4,
        Scale::Test,
        21,
    );

    let serial = Execution::new(&matrix)
        .serial()
        .run()
        .unwrap()
        .into_outcomes();
    let parallel = Execution::new(&matrix)
        .threads(4)
        .run()
        .unwrap()
        .into_outcomes();

    let config = CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized());
    let sim = Simulation::standalone(config, workload, SimOptions::new(Scale::Test, 21));
    let mut engine = sim.engine();
    engine.step_rounds(engine.warmup_rounds());
    engine.begin_measurement();
    let half = engine.measured_rounds() / 2;
    engine.step_rounds(half);
    engine.step_rounds(engine.measured_rounds() - half);
    let stepped = engine.finish();

    assert_eq!(format!("{:?}", serial[handle]), format!("{stepped:?}"));
    assert_eq!(format!("{:?}", parallel[handle]), format!("{stepped:?}"));
}

#[test]
fn driver_results_are_identical_across_thread_counts() {
    let workloads = [presets::tiny()];
    let prefetchers = [
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ];
    // SHIFT_THREADS only changes the worker pool, never the results; pin the
    // executor to one thread and to many via the env knob for a full driver.
    std::env::set_var("SHIFT_THREADS", "1");
    let serial = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 33);
    std::env::set_var("SHIFT_THREADS", "8");
    let parallel = speedup_comparison_with(&workloads, &prefetchers, 4, Scale::Test, 33);
    std::env::remove_var("SHIFT_THREADS");

    assert_eq!(format!("{:?}", serial.rows), format!("{:?}", parallel.rows));
    assert_eq!(serial.geomean, parallel.geomean);
}
