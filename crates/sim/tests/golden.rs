//! Bit-identical golden-result regression tests.
//!
//! The perf work on the engine (scratch buffers, batched stepping, inlined
//! leaf calls) must never change *what* is simulated, only how fast. These
//! tests lock the full serialized [`RunResult`] of every Table I workload
//! preset under both SHIFT and PIF — plus the baseline and next-line
//! prefetchers on the tiny preset — against JSON recorded from the
//! pre-optimization engine. The hybrid-lab presets (SHIFT+next-line,
//! gated PIF, adaptive, throttled SHIFT) are locked the same way, recorded
//! when the lab landed.
//!
//! On mismatch the actual JSON is written next to the golden file as
//! `<name>.actual.json` for diffing. To re-bless after an *intentional*
//! results change, run with `SHIFT_BLESS=1`:
//!
//! ```text
//! SHIFT_BLESS=1 cargo test -p shift-sim --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use serde::json;
use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift_trace::{presets, Scale, WorkloadSpec};

const CORES: u16 = 4;
const SEED: u64 = 0x60_1DEA;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn run_json(workload: &WorkloadSpec, prefetcher: PrefetcherConfig) -> String {
    let config = CmpConfig::micro13(CORES, prefetcher);
    let options = SimOptions::new(Scale::Test, SEED);
    let result = Simulation::standalone(config, workload.clone(), options).run();
    json::to_string_pretty(&result)
}

fn check(name: &str, workload: &WorkloadSpec, prefetcher: PrefetcherConfig) {
    let actual = run_json(workload, prefetcher);
    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var("SHIFT_BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        fs::create_dir_all(golden_dir()).expect("create golden dir");
        fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate with SHIFT_BLESS=1",
            path.display()
        )
    });
    if actual != expected {
        let actual_path = golden_dir().join(format!("{name}.actual.json"));
        fs::write(&actual_path, &actual).expect("write actual file");
        panic!(
            "run `{name}` diverged from the recorded pre-optimization result; \
             diff {} against {}",
            actual_path.display(),
            path.display()
        );
    }
}

/// Every Table I preset (plus the tiny test preset) the goldens cover.
fn suite() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("tiny", presets::tiny()),
        ("oltp_db2", presets::oltp_db2()),
        ("oltp_oracle", presets::oltp_oracle()),
        ("dss_q2", presets::dss_q2()),
        ("dss_q17", presets::dss_q17()),
        ("media_streaming", presets::media_streaming()),
        ("web_frontend", presets::web_frontend()),
        ("web_search", presets::web_search()),
    ]
}

#[test]
fn shift_results_are_bit_identical_to_recorded() {
    for (name, workload) in suite() {
        check(
            &format!("{name}_shift"),
            &workload,
            PrefetcherConfig::shift_virtualized(),
        );
    }
}

#[test]
fn pif_results_are_bit_identical_to_recorded() {
    for (name, workload) in suite() {
        check(
            &format!("{name}_pif32k"),
            &workload,
            PrefetcherConfig::pif_32k(),
        );
    }
}

#[test]
fn baseline_and_next_line_results_are_bit_identical_to_recorded() {
    let tiny = presets::tiny();
    check("tiny_baseline", &tiny, PrefetcherConfig::None);
    check("tiny_next_line", &tiny, PrefetcherConfig::next_line());
}

#[test]
fn dedicated_and_zero_latency_shift_results_are_bit_identical_to_recorded() {
    let tiny = presets::tiny();
    check(
        "tiny_shift_dedicated",
        &tiny,
        PrefetcherConfig::shift_dedicated(),
    );
    check(
        "tiny_shift_zero_latency",
        &tiny,
        PrefetcherConfig::shift_zero_latency(),
    );
}

#[test]
fn hybrid_results_are_bit_identical_to_recorded() {
    // The composed designs of the hybrid lab, on the same two presets the
    // dispatch tests exercise. Recorded with SHIFT_BLESS=1 when the lab
    // landed; any later change to the wrappers' issue semantics must re-bless
    // deliberately.
    for (name, workload) in [
        ("tiny", presets::tiny()),
        ("web_frontend", presets::web_frontend()),
    ] {
        check(
            &format!("{name}_shift_next_line"),
            &workload,
            PrefetcherConfig::shift_next_line(),
        );
        check(
            &format!("{name}_gated_pif32k"),
            &workload,
            PrefetcherConfig::gated_pif_32k(),
        );
        check(
            &format!("{name}_adaptive_nl_shift"),
            &workload,
            PrefetcherConfig::adaptive_nl_shift(),
        );
    }
    check(
        "tiny_shift_throttled_bw4",
        &presets::tiny(),
        PrefetcherConfig::shift_throttled(4),
    );
}
