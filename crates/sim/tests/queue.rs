//! Work-queue and incremental-reuse tests for the sweep pipeline.
//!
//! The central property mirrors the shard one: for *any* matrix and *any*
//! number of concurrent queue workers sharing one directory, the drained
//! queue merges bit-identical to a serial in-process execution. The
//! negative tests pin down the lock protocol (live claims are respected,
//! stale claims are reclaimed, merging under locks is a typed error) and
//! the cache semantics of partial loads (corrupted or foreign outcomes are
//! cache misses, never poison).

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use proptest::prelude::*;
use shift_sim::store::{lock_file_name, outcome_file_name, read_lock, seed_outcomes};
use shift_sim::{
    CancelToken, Execution, ExecutionReport, LockHeartbeat, PrefetcherConfig, QueueConfig,
    RunEvent, RunKeyId, RunMatrix, RunOutcomes, RunStore, ShardSpec, StoreError,
};
use shift_trace::{presets, Scale};

/// A claim lock as a dead/foreign worker would have written it (the schema
/// is field-order independent; `read_lock` keys on names).
fn lock_json(key_id: RunKeyId, worker: &str, claimed_unix: u64) -> String {
    format!(
        "{{\"schema\": 1, \"key_id\": \"{key_id}\", \"worker\": \"{worker}\", \
         \"claimed_unix\": {claimed_unix}}}"
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shift-sim-queue-test-{tag}"));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn prefetcher(idx: u64) -> PrefetcherConfig {
    match idx % 4 {
        0 => PrefetcherConfig::None,
        1 => PrefetcherConfig::next_line(),
        2 => PrefetcherConfig::pif_2k(),
        _ => PrefetcherConfig::shift_virtualized(),
    }
}

fn build_matrix(entries: &[(u64, u64, u64)]) -> (RunMatrix, Vec<shift_sim::RunHandle>) {
    let workloads = [
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    let mut matrix = RunMatrix::new();
    let handles = entries
        .iter()
        .map(|&(w, p, seed)| {
            matrix.standalone(
                &workloads[(w % 2) as usize],
                prefetcher(p),
                2,
                Scale::Test,
                seed % 3,
            )
        })
        .collect();
    (matrix, handles)
}

/// A test worker config: distinct id, fast poll, default (long) TTL so
/// cooperating workers never steal each other's live claims.
fn worker(tag: &str) -> QueueConfig {
    let mut config = QueueConfig::new(format!("test-{tag}"));
    config.poll = Duration::from_millis(10);
    config
}

/// One queue worker draining `matrix` into `dir` through the builder.
fn drain(
    matrix: &RunMatrix,
    dir: &std::path::Path,
    config: QueueConfig,
    threads: usize,
) -> ExecutionReport {
    *Execution::new(matrix)
        .queue(config)
        .dir(dir)
        .threads(threads)
        .run()
        .expect("queue drain")
        .report()
}

/// Serial reference execution every merge is compared against.
fn serial_reference(matrix: &RunMatrix) -> RunOutcomes {
    Execution::new(matrix)
        .serial()
        .run()
        .expect("serial reference")
        .into_outcomes()
}

/// A durable shard execution through the builder.
fn shard_exec(matrix: &RunMatrix, spec: ShardSpec, dir: &std::path::Path) -> ExecutionReport {
    *Execution::new(matrix)
        .shard(spec)
        .dir(dir)
        .serial()
        .run()
        .expect("shard execution")
        .report()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// For random matrices and any worker count in 1..=4, K concurrent
    /// queue workers sharing one directory drain it to outcomes that merge
    /// bit-identical to a serial execution, with every run executed exactly
    /// once across the fleet.
    #[test]
    fn concurrent_queue_workers_merge_bit_identical_to_serial(
        entries in proptest::collection::vec((0u64..2, 0u64..4, 0u64..3), 1..5),
        workers in 1usize..=4,
    ) {
        let (matrix, handles) = build_matrix(&entries);
        let serial = serial_reference(&matrix);

        let dir = temp_dir(&format!("prop-{workers}"));
        let reports: Vec<_> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..workers)
                .map(|w| {
                    let dir = dir.clone();
                    let matrix = &matrix;
                    scope.spawn(move || drain(matrix, &dir, worker(&format!("w{w}")), 1))
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker thread")).collect()
        });

        // Wait-mode workers only return once the sweep is complete, and
        // cooperating workers (TTL far above run time) never duplicate work.
        let executed_total: usize = reports.iter().map(|r| r.sources.executed).sum();
        prop_assert_eq!(executed_total, matrix.len(), "each run executes exactly once");
        for report in &reports {
            prop_assert!(report.complete);
            prop_assert_eq!(report.sources.reclaimed, 0, "no stale locks among live workers");
        }
        // A drained queue leaves no locks behind.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            prop_assert!(name.starts_with("run-"), "leftover non-outcome file {name}");
        }

        let merged = RunStore::new([&dir]).load(&matrix).expect("strict merge");
        for &handle in &handles {
            prop_assert_eq!(&merged[handle], &serial[handle]);
        }
        prop_assert_eq!(format!("{merged:?}"), format!("{serial:?}"));
        fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn stale_lock_is_reclaimed_and_run_executes() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2)]);
    let dir = temp_dir("stale-reclaim");
    fs::create_dir_all(&dir).unwrap();

    // A worker died holding a claim: its lock records a long-past claim
    // time, and no outcome exists for the run.
    let victim = matrix.key_ids()[0];
    // Claimed in 1970: stale under any sane TTL.
    fs::write(
        dir.join(lock_file_name(victim)),
        lock_json(victim, "dead-worker", 1_000),
    )
    .unwrap();

    let report = drain(&matrix, &dir, worker("reclaimer"), 1);
    assert!(report.complete);
    assert_eq!(report.sources.executed, matrix.len(), "all runs execute");
    assert!(
        report.sources.reclaimed >= 1,
        "the dead worker's claim was reclaimed"
    );
    assert!(
        !dir.join(lock_file_name(victim)).exists(),
        "the stale lock is gone"
    );
    RunStore::new([&dir]).load(&matrix).expect("complete sweep");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_lock_is_respected_and_merge_reports_active_locks() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1)]);
    let dir = temp_dir("live-lock");
    fs::create_dir_all(&dir).unwrap();

    // Another worker holds a *fresh* claim on one run.
    let held = matrix.key_ids()[0];
    let lock_path = dir.join(lock_file_name(held));
    fs::write(&lock_path, lock_json(held, "other-live-worker", now_unix())).unwrap();

    // A non-waiting worker executes everything else and reports incomplete.
    let mut config = worker("polite");
    config.wait = false;
    let report = drain(&matrix, &dir, config, 1);
    assert!(!report.complete, "the held run is not ours to finish");
    assert_eq!(report.sources.executed, matrix.len() - 1);
    assert_eq!(report.sources.reclaimed, 0);
    assert!(lock_path.exists(), "the live lock was not touched");
    let record = read_lock(&lock_path).expect("lock still parses");
    assert_eq!(record.worker, "other-live-worker");

    // Merging now surfaces the claim instead of a bare MissingRuns.
    let err = RunStore::new([&dir]).load(&matrix).unwrap_err();
    match err {
        StoreError::ActiveLocks {
            locks,
            missing,
            planned,
        } => {
            assert_eq!(locks, vec![lock_path.clone()]);
            assert_eq!(missing, 1);
            assert_eq!(planned, matrix.len());
        }
        other => panic!("expected ActiveLocks, got {other}"),
    }

    // Once the claim is released (owner finished elsewhere / operator
    // removed it), a waiting worker completes the sweep.
    fs::remove_file(&lock_path).unwrap();
    let report = drain(&matrix, &dir, worker("finisher"), 1);
    assert!(report.complete);
    assert_eq!(report.sources.executed, 1);
    RunStore::new([&dir]).load(&matrix).expect("complete sweep");
    fs::remove_dir_all(&dir).unwrap();
}

/// The heartbeat half of the lock protocol: a live worker's claim is
/// re-stamped every poll tick, so `SHIFT_QUEUE_TTL` can drop far below the
/// longest single run without contending workers stealing live claims.
#[test]
fn heartbeat_keeps_a_claim_fresh_while_its_owner_works() {
    let (matrix, _) = build_matrix(&[(0, 0, 0)]);
    let dir = temp_dir("heartbeat-fresh");
    fs::create_dir_all(&dir).unwrap();
    let key_id = matrix.key_ids()[0];
    let lock_path = dir.join(lock_file_name(key_id));

    // A claim whose embedded timestamp is ancient — as a long run's lock
    // would look mid-simulation if nobody refreshed it.
    fs::write(&lock_path, lock_json(key_id, "long-runner", 1_000)).unwrap();

    let heartbeat = LockHeartbeat::spawn(
        lock_path.clone(),
        key_id,
        "long-runner".to_owned(),
        Duration::from_millis(10),
    );
    // Wait until a beat lands (generous deadline for loaded CI hosts).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let refreshed = loop {
        if let Ok(record) = read_lock(&lock_path) {
            if record.claimed_unix > 1_000 {
                break record;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no heartbeat within 10s"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(refreshed.key_id, key_id);
    assert_eq!(refreshed.worker, "long-runner");
    assert!(refreshed.claimed_unix + 60 > now_unix(), "stamped with now");

    // A contender with a TTL far below any long run now sees a *fresh*
    // claim and leaves the run alone — no reclaim, no duplicate execution.
    let mut contender = worker("contender");
    contender.wait = false;
    contender.lock_ttl = Duration::from_secs(60);
    let report = drain(&matrix, &dir, contender, 1);
    assert_eq!(report.sources.executed, 0, "live claim respected");
    assert_eq!(report.sources.reclaimed, 0);
    assert!(!report.complete);

    // Dropping the heartbeat stops the refresher: a sentinel rewrite stays.
    drop(heartbeat);
    fs::write(&lock_path, lock_json(key_id, "sentinel", 5)).unwrap();
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(
        read_lock(&lock_path).unwrap().worker,
        "sentinel",
        "heartbeat kept beating after drop"
    );
    fs::remove_dir_all(&dir).unwrap();
}

/// A heartbeat must never recreate a lock that a contender reclaimed (or
/// the owner released): resurrection would orphan the slot until the TTL
/// expired again.
#[test]
fn heartbeat_does_not_resurrect_a_reclaimed_lock() {
    let (matrix, _) = build_matrix(&[(0, 0, 0)]);
    let dir = temp_dir("heartbeat-resurrect");
    fs::create_dir_all(&dir).unwrap();
    let key_id = matrix.key_ids()[0];
    let lock_path = dir.join(lock_file_name(key_id));
    fs::write(&lock_path, lock_json(key_id, "owner", now_unix())).unwrap();

    let heartbeat = LockHeartbeat::spawn(
        lock_path.clone(),
        key_id,
        "owner".to_owned(),
        Duration::from_millis(10),
    );
    // Another worker reclaims (rename + unlink, here collapsed to unlink).
    fs::remove_file(&lock_path).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !lock_path.exists(),
        "heartbeat resurrected a reclaimed lock"
    );
    drop(heartbeat);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queue_resumes_a_partially_filled_directory() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2), (1, 3, 0)]);
    let dir = temp_dir("queue-resume");
    // A shard (or previous queue run) already produced part of the sweep.
    shard_exec(&matrix, ShardSpec::new(1, 2), &dir);
    let preexisting = fs::read_dir(&dir).unwrap().count();
    assert!(preexisting > 0 && preexisting < matrix.len());

    let report = drain(&matrix, &dir, worker("resumer"), 2);
    assert!(report.complete);
    assert_eq!(
        report.sources.executed,
        matrix.len() - preexisting,
        "only the missing runs execute"
    );
    RunStore::new([&dir]).load(&matrix).expect("complete sweep");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_cached_outcome_is_a_miss_not_poison() {
    let (matrix, handles) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2)]);
    let dir = temp_dir("reuse-corrupt");
    shard_exec(&matrix, ShardSpec::full(), &dir);

    // One cached outcome rots on disk.
    let victim = dir.join(outcome_file_name(matrix.key_ids()[1]));
    fs::write(&victim, "{\"schema\": 1, \"matrix\": \"trunca").unwrap();

    let partial = RunStore::new([&dir]).load_partial(&matrix).expect("probe");
    assert_eq!(partial.reused, matrix.len() - 1);
    assert_eq!(partial.skipped_malformed, vec![victim]);
    assert_eq!(partial.skipped_foreign, 0);

    // The delta re-executes exactly the rotten run, and the spliced
    // outcomes are bit-identical to a from-scratch serial execution.
    let delta = Execution::new(&matrix)
        .reuse(partial)
        .serial()
        .run()
        .expect("delta execution");
    assert_eq!(delta.report().sources.executed, 1);
    assert_eq!(delta.report().sources.reused, matrix.len() - 1);
    let spliced = delta.into_outcomes();
    let serial = serial_reference(&matrix);
    for &handle in &handles {
        assert_eq!(&spliced[handle], &serial[handle]);
    }
    assert_eq!(format!("{spliced:?}"), format!("{serial:?}"));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_load_reuses_across_foreign_fingerprints_and_seeds_a_new_directory() {
    // An old sweep's outcomes...
    let (old_matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1)]);
    let old_dir = temp_dir("reuse-old");
    shard_exec(&old_matrix, ShardSpec::full(), &old_dir);

    // ...probed under a *grown* plan (different fingerprint, superset keys).
    let (new_matrix, handles) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2), (1, 3, 0)]);
    assert_ne!(old_matrix.fingerprint(), new_matrix.fingerprint());
    assert!(new_matrix.len() > old_matrix.len());
    // The strict merge refuses foreign fingerprints...
    assert!(matches!(
        RunStore::new([&old_dir]).load(&new_matrix),
        Err(StoreError::ForeignMatrix { .. })
    ));
    // ...but the partial load reuses every still-planned key.
    let partial = RunStore::new([&old_dir]).load_partial(&new_matrix).unwrap();
    assert_eq!(partial.reused, old_matrix.len());
    assert_eq!(partial.skipped_foreign, 0);
    assert!(partial.skipped_malformed.is_empty());

    // Seeding writes the hits under the NEW fingerprint; a queue worker
    // then drains only the delta, and the strict merge accepts the result.
    let new_dir = temp_dir("reuse-new");
    let seeded = seed_outcomes(&new_matrix, &partial, &new_dir).expect("seed");
    assert_eq!(seeded, old_matrix.len());
    // Seeding is idempotent: valid outcomes are not rewritten.
    assert_eq!(seed_outcomes(&new_matrix, &partial, &new_dir).unwrap(), 0);

    let report = drain(&new_matrix, &new_dir, worker("delta"), 1);
    assert_eq!(report.sources.executed, new_matrix.len() - old_matrix.len());
    let merged = RunStore::new([&new_dir]).load(&new_matrix).expect("merge");
    let serial = serial_reference(&new_matrix);
    for &handle in &handles {
        assert_eq!(&merged[handle], &serial[handle]);
    }
    fs::remove_dir_all(&old_dir).unwrap();
    fs::remove_dir_all(&new_dir).unwrap();
}

/// `--reuse` composed with static `K/N` sharding: each shard seeds only
/// the slice it owns, so the per-shard directories stay disjoint and the
/// strict multi-directory merge succeeds (a full seed into every shard
/// directory would duplicate every reused run and trip `DuplicateKey`).
#[test]
fn per_shard_seeding_keeps_shard_directories_disjoint() {
    use shift_sim::shard::seed_shard_outcomes;

    let (old_matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2)]);
    let old_dir = temp_dir("shard-reuse-old");
    shard_exec(&old_matrix, ShardSpec::full(), &old_dir);

    let (new_matrix, handles) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2), (1, 3, 0)]);
    let partial = RunStore::new([&old_dir]).load_partial(&new_matrix).unwrap();
    assert_eq!(partial.reused, old_matrix.len());

    const SHARDS: usize = 2;
    let dirs: Vec<PathBuf> = (1..=SHARDS)
        .map(|k| temp_dir(&format!("shard-reuse-d{k}")))
        .collect();
    let mut seeded_total = 0;
    let mut executed_total = 0;
    for (k, dir) in dirs.iter().enumerate() {
        let spec = ShardSpec::new(k + 1, SHARDS);
        seeded_total += seed_shard_outcomes(&new_matrix, &partial, dir, spec).unwrap();
        let report = shard_exec(&new_matrix, spec, dir);
        executed_total += report.sources.executed;
    }
    assert_eq!(
        seeded_total,
        old_matrix.len(),
        "every hit seeded exactly once"
    );
    assert_eq!(
        executed_total,
        new_matrix.len() - old_matrix.len(),
        "only the delta executes across all shards"
    );

    // The disjoint shard directories merge strictly — no DuplicateKey.
    let merged = RunStore::new(dirs.iter().cloned())
        .load(&new_matrix)
        .expect("disjoint shard+reuse directories merge");
    let serial = serial_reference(&new_matrix);
    for &handle in &handles {
        assert_eq!(&merged[handle], &serial[handle]);
    }
    for dir in dirs.iter().chain([&old_dir]) {
        let _ = fs::remove_dir_all(dir);
    }
}

/// Shrunken plans reuse too: outcomes for dropped keys are skipped as
/// foreign, the kept keys hit.
#[test]
fn partial_load_skips_keys_the_plan_dropped() {
    let (big, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2)]);
    let dir = temp_dir("reuse-shrunk");
    shard_exec(&big, ShardSpec::full(), &dir);

    let (small, _) = build_matrix(&[(0, 0, 0)]);
    let partial = RunStore::new([&dir]).load_partial(&small).unwrap();
    assert_eq!(partial.reused, small.len());
    assert_eq!(partial.skipped_foreign, big.len() - small.len());
    assert!(partial.missing_slots(&small).is_empty());
    fs::remove_dir_all(&dir).unwrap();
}

/// The observer hook sees every state transition: a fresh drain emits one
/// `Claimed` + one `Executed` per run (no cache hits, no reclaims), and the
/// event stream alone reconstructs the run count — which is what lets a
/// resident server stream progress without polling the outcome directory.
#[test]
fn observer_sees_one_claim_and_one_execution_per_run() {
    use std::sync::Mutex;

    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2)]);
    let dir = temp_dir("observer-counts");
    let events: Mutex<Vec<RunEvent>> = Mutex::new(Vec::new());
    let observer = |event: RunEvent| events.lock().unwrap().push(event);

    let report = *Execution::new(&matrix)
        .queue(worker("observed"))
        .dir(&dir)
        .threads(2)
        .observer(&observer)
        .run()
        .expect("observed drain")
        .report();
    assert!(report.complete);
    assert_eq!(report.sources.executed, matrix.len());

    let events = events.into_inner().unwrap();
    let count = |f: fn(&RunEvent) -> bool| events.iter().filter(|e| f(e)).count();
    assert_eq!(
        count(|e| matches!(e, RunEvent::Claimed { .. })),
        matrix.len()
    );
    assert_eq!(
        count(|e| matches!(e, RunEvent::Executed { .. })),
        matrix.len()
    );
    assert_eq!(count(|e| matches!(e, RunEvent::Reclaimed { .. })), 0);
    // Every planned key appears among the executions, exactly once.
    let mut executed: Vec<RunKeyId> = events
        .iter()
        .filter(|e| matches!(e, RunEvent::Executed { .. }))
        .map(RunEvent::key_id)
        .collect();
    executed.sort_unstable();
    let mut planned = matrix.key_ids().to_vec();
    planned.sort_unstable();
    assert_eq!(executed, planned);

    // A second drain over the full directory is all cache hits.
    let hits: Mutex<Vec<RunEvent>> = Mutex::new(Vec::new());
    let observer = |event: RunEvent| hits.lock().unwrap().push(event);
    let report = *Execution::new(&matrix)
        .queue(worker("observed-2"))
        .dir(&dir)
        .serial()
        .observer(&observer)
        .run()
        .unwrap()
        .report();
    assert!(report.complete);
    assert_eq!(report.sources.executed, 0);
    assert_eq!(report.sources.reused, matrix.len(), "all cache hits");
    let hits = hits.into_inner().unwrap();
    assert!(hits
        .iter()
        .all(|e| matches!(e, RunEvent::AlreadyDone { .. })));
    assert_eq!(hits.len(), matrix.len());
    fs::remove_dir_all(&dir).unwrap();
}

/// Cooperative cancellation: cancelling from the observer after the first
/// execution stops the drain between claims — exactly one run executed, the
/// report honestly incomplete, and (the invariant a server relies on) no
/// orphaned claim locks left behind.
#[test]
fn cancelled_drain_stops_cleanly_without_orphaned_claims() {
    let (matrix, _) = build_matrix(&[(0, 0, 0), (1, 1, 1), (0, 2, 2), (1, 3, 0)]);
    let dir = temp_dir("cancel-clean");
    let cancel = CancelToken::new();
    let observer = {
        let cancel = cancel.clone();
        move |event: RunEvent| {
            if matches!(event, RunEvent::Executed { .. }) {
                cancel.cancel();
            }
        }
    };

    let report = *Execution::new(&matrix)
        .queue(worker("cancelled"))
        .dir(&dir)
        .serial()
        .observer(&observer)
        .cancel(&cancel)
        .run()
        .expect("cancelled drain still returns its tally")
        .report();
    assert!(!report.complete, "a cancelled drain is not complete");
    assert_eq!(
        report.sources.executed, 1,
        "in-flight run finished, no new claims"
    );

    // The one finished run persisted; nothing else was touched, and no
    // lock survived the cancellation.
    let mut outcomes = 0;
    for entry in fs::read_dir(&dir).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(name.starts_with("run-"), "leftover non-outcome file {name}");
        outcomes += 1;
    }
    assert_eq!(outcomes, 1);

    // A fresh (uncancelled) worker finishes the remainder.
    let report = drain(&matrix, &dir, worker("resume-after"), 1);
    assert!(report.complete);
    assert_eq!(report.sources.executed, matrix.len() - 1);
    RunStore::new([&dir]).load(&matrix).expect("complete sweep");
    fs::remove_dir_all(&dir).unwrap();
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}
