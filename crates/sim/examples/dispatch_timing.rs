//! One-off A/B timing of enum-dispatched vs dyn-dispatched stepping.
//! Interleaves the two loops over identical warmed engines so scheduler
//! noise hits both sides equally.

use std::time::Instant;

use shift_sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift_trace::{presets, Scale};

fn main() {
    for prefetcher in [
        PrefetcherConfig::None,
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ] {
        let label = prefetcher.label();
        let config = CmpConfig::micro13(8, prefetcher);
        let options = SimOptions::new(Scale::Demo, 1);
        let workload = presets::web_frontend().scaled_footprint(0.25);
        let sim = Simulation::standalone(config, workload, options);

        let mut enum_engine = sim.engine();
        let mut dyn_engine = sim.engine();
        enum_engine.step_rounds(20_000);
        dyn_engine.step_rounds(20_000);

        let rounds = 5_000usize;
        let reps = 40usize;
        let mut enum_ns: Vec<u128> = Vec::with_capacity(reps);
        let mut dyn_ns: Vec<u128> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t = Instant::now();
            enum_engine.step_rounds(rounds);
            enum_ns.push(t.elapsed().as_nanos());
            let t = Instant::now();
            dyn_engine.step_rounds_dyn(rounds);
            dyn_ns.push(t.elapsed().as_nanos());
        }
        enum_ns.sort_unstable();
        dyn_ns.sort_unstable();
        let e = enum_ns[reps / 2] as f64;
        let d = dyn_ns[reps / 2] as f64;
        println!(
            "{label}: enum {:.1} ms, dyn {:.1} ms per {rounds} rounds, dyn/enum {:.3}",
            e / 1e6,
            d / 1e6,
            d / e
        );
    }
}
