//! Local stand-in for the `criterion` crate so the workspace builds without
//! network access to a crate registry.
//!
//! Implements the subset of the criterion API the `shift-bench` benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — no statistics engine, plots, or baselines.
//!
//! Measurement mirrors real criterion's structure: every benchmark first runs
//! *warm-up* passes (untimed, so caches, branch predictors, and lazily built
//! state settle), then `sample_size` timed samples; each sample times a batch
//! of `measurement_iterations` back-to-back iterations under one clock read
//! and the reported figure is the **median ns/iter** across samples. Results
//! are also recorded as [`BenchReport`]s on the [`Criterion`] driver, which is
//! how the `shift-perf` harness turns bench runs into `BENCH.json` artifacts.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation (recorded on the report and echoed in the log line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The measured outcome of one benchmark, kept on the [`Criterion`] driver so
/// harnesses (the `shift-perf` binary) can consume numbers programmatically
/// instead of scraping stdout.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Group the benchmark ran in.
    pub group: String,
    /// Benchmark name (including any parameter suffix).
    pub name: String,
    /// Median time per iteration across the timed samples, in nanoseconds.
    pub median_ns_per_iter: f64,
    /// Number of timed samples taken.
    pub samples: usize,
    /// Iterations timed per sample.
    pub iterations_per_sample: u64,
    /// Throughput annotation, if the group declared one.
    pub throughput: Option<Throughput>,
}

impl BenchReport {
    /// Iterations (or annotated units) per second implied by the median.
    ///
    /// With a [`Throughput::Elements`] annotation this is elements/sec, with
    /// [`Throughput::Bytes`] bytes/sec; without an annotation it is
    /// iterations/sec. Returns 0.0 for a zero median.
    pub fn per_second(&self) -> f64 {
        if self.median_ns_per_iter <= 0.0 {
            return 0.0;
        }
        let iters_per_sec = 1e9 / self.median_ns_per_iter;
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => iters_per_sec * n as f64,
            None => iters_per_sec,
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    reports: Vec<BenchReport>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name.to_owned(),
            sample_size: 10,
            warm_up_iterations: 2,
            measurement_iterations: 1,
            throughput: None,
        }
    }

    /// All benchmark results recorded so far, in execution order.
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }

    /// Drains the recorded benchmark results.
    pub fn take_reports(&mut self) -> Vec<BenchReport> {
        std::mem::take(&mut self.reports)
    }
}

/// A group of related benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group: String,
    sample_size: usize,
    warm_up_iterations: u64,
    measurement_iterations: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the number of untimed warm-up iterations run before sampling.
    pub fn warm_up_iterations(&mut self, n: u64) -> &mut Self {
        self.warm_up_iterations = n;
        self
    }

    /// Sets how many iterations each timed sample batches under one clock
    /// read (amortizing timer overhead for nanosecond-scale routines).
    pub fn measurement_iterations(&mut self, n: u64) -> &mut Self {
        self.measurement_iterations = n.max(1);
        self
    }

    /// Records the per-iteration throughput for the report.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, |b| routine(b));
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        // Warm-up: untimed iterations so the first timed sample does not pay
        // for cold caches or lazily initialized state.
        if self.warm_up_iterations > 0 {
            let mut warmup = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
                batch: self.warm_up_iterations,
            };
            routine(&mut warmup);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
                batch: self.measurement_iterations,
            };
            routine(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 * 1e9 / median)
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  ({:.0} B/s)", n as f64 * 1e9 / median)
            }
            _ => String::new(),
        };
        println!(
            "  {name}: median {median:.1} ns/iter over {} samples × {} iters{throughput}",
            samples.len(),
            self.measurement_iterations,
        );
        self.criterion.reports.push(BenchReport {
            group: self.group.clone(),
            name: name.to_owned(),
            median_ns_per_iter: median,
            samples: samples.len(),
            iterations_per_sample: self.measurement_iterations,
            throughput: self.throughput,
        });
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
    batch: u64,
}

impl Bencher {
    /// Times `batch` back-to-back executions of `routine` under a single
    /// clock read (criterion's iteration batching), accumulating into this
    /// sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.batch;
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_warmup_then_samples_and_records_reports() {
        let mut criterion = Criterion::default();
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("smoke");
            group
                .sample_size(3)
                .warm_up_iterations(2)
                .measurement_iterations(4)
                .throughput(Throughput::Elements(10));
            group.bench_function("counting", |b| {
                b.iter(|| {
                    runs += 1;
                    black_box(runs)
                })
            });
            group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        // 2 warm-up iterations + 3 samples × 4 iterations each.
        assert_eq!(runs, 2 + 3 * 4);
        let reports = criterion.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].group, "smoke");
        assert_eq!(reports[0].name, "counting");
        assert_eq!(reports[0].samples, 3);
        assert_eq!(reports[0].iterations_per_sample, 4);
        assert!(reports[0].median_ns_per_iter >= 0.0);
        let drained = criterion.take_reports();
        assert_eq!(drained.len(), 2);
        assert!(criterion.reports().is_empty());
    }

    #[test]
    fn per_second_scales_with_throughput_annotation() {
        let report = BenchReport {
            group: "g".into(),
            name: "n".into(),
            median_ns_per_iter: 100.0,
            samples: 3,
            iterations_per_sample: 1,
            throughput: Some(Throughput::Elements(50)),
        };
        // 100 ns/iter → 10M iters/sec → 500M elements/sec.
        assert!((report.per_second() - 5e8).abs() < 1.0);
        let plain = BenchReport {
            throughput: None,
            ..report
        };
        assert!((plain.per_second() - 1e7).abs() < 1.0);
        let zero = BenchReport {
            median_ns_per_iter: 0.0,
            ..plain
        };
        assert_eq!(zero.per_second(), 0.0);
    }
}
