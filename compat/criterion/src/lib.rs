//! Local stand-in for the `criterion` crate so the workspace builds without
//! network access to a crate registry.
//!
//! Implements the subset of the criterion API the `shift-bench` benches use:
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warm-up followed by
//! `sample_size` timed samples and prints the median wall-clock time per
//! iteration — no statistics engine, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-value helper preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Throughput annotation (recorded but only echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput for the report line.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(name, |b| routine(b));
        self
    }

    /// Runs a parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iterations: 0,
            };
            routine(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed / bencher.iterations);
            }
        }
        samples.sort();
        let median = samples
            .get(samples.len() / 2)
            .copied()
            .unwrap_or(Duration::ZERO);
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "  {name}: median {median:?}/iter over {} samples{throughput}",
            samples.len()
        );
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times one execution of `routine` (criterion runs many per sample; this
    /// shim runs one, which keeps `cargo bench` fast while still exercising
    /// every benchmark body).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

/// Mirror of `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        let mut runs = 0u32;
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
