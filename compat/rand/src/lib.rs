//! Local stand-in for the `rand` crate so the workspace builds without
//! network access to a crate registry.
//!
//! Implements the small slice of the `rand` 0.8 API this repository uses:
//! [`rngs::SmallRng`] (an xoshiro256++ generator seeded through SplitMix64,
//! the same construction the real `SmallRng` uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen_bool` / `gen_range` over integer and float ranges.
//!
//! The generator is fully deterministic for a given seed, which is all the
//! simulator requires: every result in this repository is defined relative to
//! other runs of the same binary, never against externally recorded streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // An exclusive span always fits in u64, so the reduction can
                // use the hardware 64-bit modulo; the value is bit-identical
                // to the former 128-bit computation, which lowered to the
                // (slow, library-call) `__umodti3` on the trace hot path.
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                let draw = rng.next_u64() % span;
                ((self.start as u128).wrapping_add(draw as u128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                // The only span that does not fit in u64 is the full 2^64
                // range, where the modulo is the identity.
                let draw = match u64::try_from(span) {
                    Ok(span64) => rng.next_u64() % span64,
                    Err(_) => rng.next_u64(),
                };
                ((start as u128).wrapping_add(draw as u128)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                (self.start as f64 + unit * (self.end as f64 - self.start as f64)) as $t
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 — the construction the real `rand::rngs::SmallRng` uses on
    /// 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1 << 60)).collect();
        let mut a = SmallRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1 << 60)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
