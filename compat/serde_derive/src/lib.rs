//! Local stand-in for `serde_derive` so the workspace builds without network
//! access to a crate registry.
//!
//! `#[derive(Serialize)]` expands to a real field-visitor implementation of
//! the shim `serde::Serialize` trait: structs serialize as insertion-ordered
//! maps of their fields, newtype/tuple structs as their contents, and enums
//! as externally tagged values — matching `serde_json`'s default data model.
//! `#[derive(Deserialize)]` expands to the exact inverse (a `from_value`
//! implementation of the shim `serde::Deserialize` trait), so derived types
//! round-trip through `serde::json`. The parser is hand-rolled over
//! `proc_macro::TokenStream` (no `syn`), which is sufficient for the plain
//! structs and enums this workspace derives on: named/tuple/unit structs,
//! optional simple type parameters, and enums with unit, tuple, and struct
//! variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Expands to an implementation of the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.shape {
        Shape::NamedStruct(ref fields) => named_struct_impl(&item, fields),
        Shape::TupleStruct(arity) => tuple_struct_impl(&item, arity),
        Shape::UnitStruct => unit_struct_impl(&item),
        Shape::Enum(ref variants) => enum_impl(&item, variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Expands to an implementation of the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match item.shape {
        Shape::NamedStruct(ref fields) => de_named_struct_impl(&item, fields),
        Shape::TupleStruct(arity) => de_tuple_struct_impl(&item, arity),
        Shape::UnitStruct => de_unit_struct_impl(&item),
        Shape::Enum(ref variants) => de_enum_impl(&item, variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

struct Item {
    name: String,
    /// Generic parameters in declaration order (e.g. `[Type("M")]` for
    /// `struct Foo<M> { .. }`).
    generics: Vec<GenericParam>,
    shape: Shape,
}

enum GenericParam {
    /// `'a` — emitted verbatim, no bound.
    Lifetime(String),
    /// `T` or `T: Bound` — the impl re-declares any original bounds and adds
    /// `::serde::Serialize` on top.
    Type { name: String, bounds: String },
    /// `const N: usize` — emitted with its type in the impl's parameter
    /// list and as a bare `N` in the self-type's arguments.
    Const { name: String, ty: String },
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// `impl<M: ::serde::Serialize> ::serde::Serialize for X<M>` header pieces
/// (`bound` is `"Serialize"` or `"Deserialize"`).
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        return (String::new(), item.name.clone());
    }
    let params: Vec<String> = item
        .generics
        .iter()
        .map(|g| match g {
            GenericParam::Lifetime(l) => l.clone(),
            GenericParam::Type { name, bounds } if bounds.is_empty() => {
                format!("{name}: ::serde::{bound}")
            }
            GenericParam::Type { name, bounds } => {
                format!("{name}: {bounds} + ::serde::{bound}")
            }
            GenericParam::Const { name, ty } => format!("const {name}: {ty}"),
        })
        .collect();
    let args: Vec<String> = item
        .generics
        .iter()
        .map(|g| match g {
            GenericParam::Lifetime(l) => l.clone(),
            GenericParam::Type { name, .. } => name.clone(),
            GenericParam::Const { name, .. } => name.clone(),
        })
        .collect();
    (
        format!("<{}>", params.join(", ")),
        format!("{}<{}>", item.name, args.join(", ")),
    )
}

fn named_struct_impl(item: &Item, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
            )
        })
        .collect();
    let (params, ty) = impl_header(item, "Serialize");
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(fields)\n\
             }}\n\
         }}"
    )
}

fn tuple_struct_impl(item: &Item, arity: usize) -> String {
    let (params, ty) = impl_header(item, "Serialize");
    let body = if arity == 1 {
        // Newtype structs serialize transparently as their contents.
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let items: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("::serde::Value::Seq(vec![{}])", items.join(", "))
    };
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn unit_struct_impl(item: &Item) -> String {
    let (params, ty) = impl_header(item, "Serialize");
    let name = &item.name;
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Str(\"{name}\".to_string()) }}\n\
         }}"
    )
}

fn enum_impl(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    let arms: String = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    format!("{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n")
                }
                VariantKind::Tuple(arity) => {
                    let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                    let payload = if *arity == 1 {
                        "::serde::Serialize::to_value(f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), {payload})]),\n",
                        binds = binds.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))")
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {fields} }} => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), \
                             ::serde::Value::Map(vec![{pushes}]))]),\n",
                        fields = fields.join(", "),
                        pushes = pushes.join(", ")
                    )
                }
            }
        })
        .collect();
    let (params, ty) = impl_header(item, "Serialize");
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}"
    )
}

fn de_named_struct_impl(item: &Item, fields: &[String]) -> String {
    let name = &item.name;
    let reads: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field(value, \"{name}\", \"{f}\")?"))
        .collect();
    let (params, ty) = impl_header(item, "Deserialize");
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 Ok({name} {{ {reads} }})\n\
             }}\n\
         }}",
        reads = reads.join(", ")
    )
}

fn de_tuple_struct_impl(item: &Item, arity: usize) -> String {
    let name = &item.name;
    let (params, ty) = impl_header(item, "Deserialize");
    let body = if arity == 1 {
        // Newtype structs deserialize transparently from their contents.
        format!("Ok({name}(::serde::Deserialize::from_value(value)?))")
    } else {
        let reads: Vec<String> = (0..arity)
            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
            .collect();
        format!(
            "let items = ::serde::de::elements(value, \"{name}\", {arity})?;\n\
             Ok({name}({reads}))",
            reads = reads.join(", ")
        )
    };
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_unit_struct_impl(item: &Item) -> String {
    let name = &item.name;
    let (params, ty) = impl_header(item, "Deserialize");
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::Str(s) if s == \"{name}\" => Ok({name}),\n\
                     other => Err(::serde::de::Error::unexpected(\"{name}\", \"the unit struct name\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

fn de_enum_impl(item: &Item, variants: &[Variant]) -> String {
    let name = &item.name;
    // Unit variants arrive as a bare string, payload-carrying variants as an
    // externally tagged single-entry map — the exact forms `enum_impl` emits.
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => return Ok({name}::{vname}),\n",
                vname = v.name
            )
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(arity) if *arity == 1 => Some(format!(
                    "\"{vname}\" => return Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(payload)?)),\n"
                )),
                VariantKind::Tuple(arity) => {
                    let reads: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vname}\" => {{\n\
                             let items = ::serde::de::elements(payload, \"{name}::{vname}\", {arity})?;\n\
                             return Ok({name}::{vname}({reads}));\n\
                         }}\n",
                        reads = reads.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => {
                    let reads: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::de::field(payload, \"{name}::{vname}\", \"{f}\")?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vname}\" => return Ok({name}::{vname} {{ {reads} }}),\n",
                        reads = reads.join(", ")
                    ))
                }
            }
        })
        .collect();
    let (params, ty) = impl_header(item, "Deserialize");
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n\
                 #[allow(unused_variables)]\n\
                 match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => return Err(::serde::de::Error::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => return Err(::serde::de::Error::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                     _ => {{}}\n\
                 }}\n\
                 Err(::serde::de::Error::unexpected(\"{name}\", \"an externally tagged enum value\", value))\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes_and_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    let generics = parse_generics(&tokens, &mut pos);

    match keyword.as_str() {
        "struct" => {
            // A where clause may sit between the generics and a brace body.
            skip_where_clause(&tokens, &mut pos);
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                    name,
                    generics,
                    shape: Shape::NamedStruct(parse_named_fields(g.stream())),
                },
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                    name,
                    generics,
                    shape: Shape::TupleStruct(count_top_level_fields(g.stream())),
                },
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                    name,
                    generics,
                    shape: Shape::UnitStruct,
                },
                other => panic!("unsupported struct body: {other:?}"),
            }
        }
        "enum" => {
            skip_where_clause(&tokens, &mut pos);
            match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                    name,
                    generics,
                    shape: Shape::Enum(parse_variants(g.stream())),
                },
                other => panic!("unsupported enum body: {other:?}"),
            }
        }
        other => panic!("derive(Serialize) supports structs and enums, got `{other}`"),
    }
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(*pos) {
                    *pos += 1;
                }
            }
            // `pub`, optionally `pub(crate)` / `pub(super)` / `pub(in ...)`.
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *pos += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("expected identifier, got {other:?}"),
    }
}

/// Parses `<A, B: Bound, 'a, const N: usize>` if present, returning the
/// parameters in declaration order.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<GenericParam> {
    match tokens.get(*pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *pos += 1;
    // Split the parameter list into per-parameter token slices at depth-1
    // commas, then classify each slice.
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    let mut params = Vec::new();
    while depth > 0 {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                depth += 1;
                current.push(tokens[*pos].clone());
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    params.extend(parse_generic_param(&current));
                } else {
                    current.push(tokens[*pos].clone());
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                params.extend(parse_generic_param(&current));
                current.clear();
            }
            Some(t) => current.push(t.clone()),
            None => panic!("unterminated generic parameter list"),
        }
        *pos += 1;
    }
    params
}

/// Classifies one generic parameter's tokens (bounds and defaults stripped).
fn parse_generic_param(slice: &[TokenTree]) -> Option<GenericParam> {
    match slice.first()? {
        // `'a` (optionally with bounds, which the impl does not repeat).
        TokenTree::Punct(p) if p.as_char() == '\'' => match slice.get(1) {
            Some(TokenTree::Ident(i)) => Some(GenericParam::Lifetime(format!("'{i}"))),
            other => panic!("expected lifetime identifier, got {other:?}"),
        },
        TokenTree::Ident(i) if i.to_string() == "const" => {
            // `const N: Type` (optionally `= default`, which is stripped).
            let name = match slice.get(1) {
                Some(TokenTree::Ident(n)) => n.to_string(),
                other => panic!("expected const parameter name, got {other:?}"),
            };
            match slice.get(2) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => panic!("expected `:` after const parameter name, got {other:?}"),
            }
            Some(GenericParam::Const {
                name,
                ty: tokens_to_string(strip_default(&slice[3..])),
            })
        }
        // `T`, `T: Bound + …`, `T = Default` — the impl re-declares any
        // bounds (so `struct Foo<T: Clone>` still compiles) and strips
        // defaults.
        TokenTree::Ident(i) => {
            let bounds = match slice.get(1) {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                    tokens_to_string(strip_default(&slice[2..]))
                }
                _ => String::new(),
            };
            Some(GenericParam::Type {
                name: i.to_string(),
                bounds,
            })
        }
        other => panic!("unsupported generic parameter starting at {other:?}"),
    }
}

/// Truncates a parameter's token slice at a top-level `=` (a default value,
/// which must not be repeated on an impl). `=` inside angle brackets (an
/// associated-type binding like `Iterator<Item = u8>`) is kept.
fn strip_default(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut angle_depth = 0usize;
    for (i, token) in tokens.iter().enumerate() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == '=' && angle_depth == 0 => {
                return &tokens[..i];
            }
            _ => {}
        }
    }
    tokens
}

/// Joins tokens back into source text. A space is inserted only between two
/// identifier-like tokens (which would otherwise fuse when re-lexed); punct
/// runs like `::` stay glued so paths survive the round-trip.
fn tokens_to_string(tokens: &[TokenTree]) -> String {
    fn ident_like(c: char) -> bool {
        c.is_alphanumeric() || c == '_'
    }
    let mut out = String::new();
    for token in tokens {
        let text = token.to_string();
        if let (Some(last), Some(first)) = (out.chars().last(), text.chars().next()) {
            if ident_like(last) && ident_like(first) {
                out.push(' ');
            }
        }
        out.push_str(&text);
    }
    out
}

fn skip_where_clause(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(i)) = tokens.get(*pos) {
        if i.to_string() == "where" {
            while let Some(t) = tokens.get(*pos) {
                match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return,
                    TokenTree::Punct(p) if p.as_char() == ';' => return,
                    _ => *pos += 1,
                }
            }
        }
    }
}

/// Extracts field names from the body of a named-field struct or struct
/// variant: `name: Type, ...` with attributes, visibility, and generic types
/// (whose angle brackets may hide top-level commas) handled.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    count
}

/// Advances past one type, stopping at a top-level `,` (or the end). Tracks
/// `<`/`>` nesting because generic arguments are not token groups.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(t) = tokens.get(*pos) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *pos += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == '=' {
                pos += 1;
                while let Some(t) = tokens.get(pos) {
                    if let TokenTree::Punct(p) = t {
                        if p.as_char() == ',' {
                            break;
                        }
                    }
                    pos += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}
