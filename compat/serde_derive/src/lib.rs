//! Local stand-in for `serde_derive` so the workspace builds without network
//! access to a crate registry.
//!
//! The codebase uses `#[derive(Serialize, Deserialize)]` purely as metadata —
//! nothing actually serializes values — so the derives expand to nothing.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
