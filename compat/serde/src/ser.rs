//! The [`Serialize`] trait and its implementations for standard types.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use crate::Value;

/// Conversion of a Rust value into the [`Value`] tree data model.
///
/// Derivable with `#[derive(Serialize)]`: the derive expands to a visitor
/// over the type's fields (structs serialize as insertion-ordered maps,
/// enums as externally tagged values, matching `serde_json`'s default
/// representation).
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Maps serialize as insertion-ordered JSON objects when every key renders
/// as a string, and as a sequence of `[key, value]` pairs otherwise (the
/// `serde_json` convention for non-string keys). Hash maps are sorted by
/// serialized key so output is deterministic across runs.
fn map_to_value(pairs: Vec<(Value, Value)>) -> Value {
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Map(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!("checked above"),
                })
                .collect(),
        )
    } else {
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k, v]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by_cached_key(|(k, _)| k.to_json());
        map_to_value(pairs)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(
            self.iter()
                .map(|(k, v)| (k.to_value(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers() {
        assert_eq!(3u16.to_value(), Value::UInt(3));
        assert_eq!((-3i8).to_value(), Value::Int(-3));
        assert_eq!(1.5f32.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!('y'.to_value(), Value::Str("y".into()));
        assert_eq!(().to_value(), Value::Null);
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(Some(1u8).to_value(), Value::UInt(1));
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Seq(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!([1u8, 2].to_value(), vec![1u8, 2].to_value());
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Seq(vec![Value::UInt(1), Value::Str("a".into())])
        );
        assert_eq!(Box::new(7u8).to_value(), Value::UInt(7));
        assert_eq!(Arc::new(7u8).to_value(), Value::UInt(7));
        assert_eq!(Rc::new(7u8).to_value(), Value::UInt(7));
    }

    #[test]
    fn string_keyed_maps_become_objects_sorted_by_key() {
        let mut m = HashMap::new();
        m.insert("b".to_owned(), 2u8);
        m.insert("a".to_owned(), 1u8);
        assert_eq!(
            m.to_value(),
            Value::Map(vec![
                ("a".to_owned(), Value::UInt(1)),
                ("b".to_owned(), Value::UInt(2)),
            ])
        );
    }

    #[test]
    fn non_string_keyed_maps_become_pair_sequences() {
        let mut m = BTreeMap::new();
        m.insert(2u8, "b");
        m.insert(1u8, "a");
        assert_eq!(
            m.to_value(),
            Value::Seq(vec![
                Value::Seq(vec![Value::UInt(1), Value::Str("a".into())]),
                Value::Seq(vec![Value::UInt(2), Value::Str("b".into())]),
            ])
        );
    }
}
