//! The tree data model every [`Serialize`](crate::Serialize) implementation
//! targets.

use std::fmt;

/// A serialized value: the common denominator between Rust data structures
/// and the text formats (JSON, CSV) the report pipeline emits.
///
/// Maps preserve insertion order (struct field order), so serialized output
/// is deterministic and diffs cleanly across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Absent value (`Option::None`, unit).
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (all of `u8..=u64`, `usize`).
    UInt(u64),
    /// Signed integer (all of `i8..=i64`, `isize`).
    Int(i64),
    /// Floating point (`f32`, `f64`).
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence (`Vec`, slices, tuples, `VecDeque`).
    Seq(Vec<Value>),
    /// Ordered key/value map (struct fields, string-keyed maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`]; `None` for other variants or
    /// missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Indexes into a [`Value::Seq`]; `None` for other variants or
    /// out-of-range indices.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Seq(items) => items.get(index),
            _ => None,
        }
    }

    /// Numeric view of the value (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned-integer view of the value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        crate::json::to_string(self)
    }

    /// Renders the value as human-readable, indented JSON.
    pub fn to_json_pretty(&self) -> String {
        crate::json::to_string_pretty(self)
    }
}

impl fmt::Display for Value {
    /// Displays the value as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_get_and_seq_at() {
        let v = Value::Map(vec![
            ("a".to_owned(), Value::UInt(1)),
            ("b".to_owned(), Value::Seq(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(|b| b.at(0)), Some(&Value::Bool(true)));
        assert!(v.get("missing").is_none());
        assert!(v.at(0).is_none());
    }

    #[test]
    fn numeric_views_widen() {
        assert_eq!(Value::Int(-3).as_f64(), Some(-3.0));
        assert_eq!(Value::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Value::Int(7).as_u64(), Some(7));
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert!(Value::Null.is_null());
    }
}
