//! JSON rendering of [`Value`] trees.
//!
//! Output follows `serde_json` conventions: struct maps keep field order,
//! strings are escaped per RFC 8259, and non-finite floats (which JSON
//! cannot represent) render as `null`.

use std::fmt::Write as _;

use crate::{Serialize, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes a value as indented (2-space) JSON with a trailing newline,
/// the format the figure artifacts are written in.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (key, val) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Keep whole floats recognizably floating-point, as serde_json
            // does ("1.0", not "1").
            let _ = write!(out, "{x:.1}");
        } else if x != 0.0 && (x.abs() >= 1e17 || x.abs() < 1e-5) {
            // Rust's `{}` never uses scientific notation; avoid hundreds of
            // digits for extreme magnitudes (still valid JSON numbers).
            let _ = write!(out, "{x:e}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json's Value also maps them to null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("name".to_owned(), Value::Str("fig01".to_owned())),
            (
                "points".to_owned(),
                Value::Seq(vec![Value::Float(1.0), Value::Float(1.31)]),
            ),
            ("n".to_owned(), Value::UInt(2)),
            ("ok".to_owned(), Value::Bool(true)),
            ("missing".to_owned(), Value::Null),
        ]);
        assert_eq!(
            to_string(&v),
            r#"{"name":"fig01","points":[1.0,1.31],"n":2,"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_and_ends_with_newline() {
        let v = Value::Map(vec![("a".to_owned(), Value::Seq(vec![Value::UInt(1)]))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(to_string_pretty(&Value::Seq(vec![])), "[]\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string(&1.25f64), "1.25");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&-0.5f64), "-0.5");
        assert_eq!(to_string(&1e300f64), "1e300");
    }
}
