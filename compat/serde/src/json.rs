//! JSON rendering and parsing of [`Value`] trees.
//!
//! Output follows `serde_json` conventions: struct maps keep field order,
//! strings are escaped per RFC 8259, and non-finite floats (which JSON
//! cannot represent) render as `null`. [`parse`] is the inverse — a full
//! RFC 8259 parser producing a [`Value`] tree — and [`from_str`] composes it
//! with [`Deserialize::from_value`], so any value this module wrote can be
//! read back: numbers round-trip bit-identically (integers as integers,
//! floats through Rust's shortest round-trip formatting).

use std::fmt::Write as _;

use crate::de::Error;
use crate::{Deserialize, Serialize, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serializes a value as indented (2-space) JSON with a trailing newline,
/// the format the figure artifacts are written in.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out.push('\n');
    out
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, entries.len(), '{', '}', |out, i| {
                let (key, val) = &entries[i];
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Keep whole floats recognizably floating-point, as serde_json
            // does ("1.0", not "1").
            let _ = write!(out, "{x:.1}");
        } else if x != 0.0 && (x.abs() >= 1e17 || x.abs() < 1e-5) {
            // Rust's `{}` never uses scientific notation; avoid hundreds of
            // digits for extreme magnitudes (still valid JSON numbers).
            let _ = write!(out, "{x:e}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json's Value also maps them to null.
        out.push_str("null");
    }
}

/// Parses a JSON document into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error (with its byte
/// offset) on malformed input, including trailing garbage after the value.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Parses a JSON document and deserializes it into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    T::from_value(&parse(input)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting the parser accepts. The recursive-descent
/// parser uses one stack frame per level, so corrupt input (e.g. a run of
/// `[` bytes in a damaged outcome file) must produce a typed error instead
/// of a stack-overflow abort. 128 is far beyond any document this workspace
/// writes (artifacts nest < 10 deep).
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::custom(format!("JSON parse error at byte {}: {message}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    /// Bounds container nesting (one recursion level per container).
    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.enter()?;
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Surrogate pairs encode astral-plane characters
                            // as two consecutive \u escapes.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000
                                    + ((unit as u32 - 0xD800) << 10)
                                    + (low as u32 - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit as u32)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 character (input is a &str, so
                    // the byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let unit = u16::from_str_radix(hex, 16).map_err(|_| self.error("non-hex \\u escape"))?;
        self.pos = end;
        Ok(unit)
    }

    /// Numbers keep their serialized kind: integer tokens without a fraction
    /// or exponent become [`Value::UInt`]/[`Value::Int`] (falling back to
    /// float only on 64-bit overflow); anything else parses as [`Value::Float`]
    /// via Rust's correctly-rounded `f64` parser, which inverts the shortest
    /// round-trip formatting the writer uses.
    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if digits.is_empty() {
                    return Err(self.error("lone `-` is not a number"));
                }
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("malformed number"))
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("name".to_owned(), Value::Str("fig01".to_owned())),
            (
                "points".to_owned(),
                Value::Seq(vec![Value::Float(1.0), Value::Float(1.31)]),
            ),
            ("n".to_owned(), Value::UInt(2)),
            ("ok".to_owned(), Value::Bool(true)),
            ("missing".to_owned(), Value::Null),
        ]);
        assert_eq!(
            to_string(&v),
            r#"{"name":"fig01","points":[1.0,1.31],"n":2,"ok":true,"missing":null}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_and_ends_with_newline() {
        let v = Value::Map(vec![("a".to_owned(), Value::Seq(vec![Value::UInt(1)]))]);
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(to_string_pretty(&Value::Seq(vec![])), "[]\n");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string("a\"b\\c\nd\u{1}"), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_inverts_rendering() {
        let v = Value::Map(vec![
            ("name".to_owned(), Value::Str("fig01".to_owned())),
            (
                "points".to_owned(),
                Value::Seq(vec![Value::Float(1.0), Value::Float(1.31)]),
            ),
            ("n".to_owned(), Value::UInt(2)),
            ("neg".to_owned(), Value::Int(-3)),
            ("ok".to_owned(), Value::Bool(true)),
            ("missing".to_owned(), Value::Null),
            ("empty_seq".to_owned(), Value::Seq(vec![])),
            ("empty_map".to_owned(), Value::Map(vec![])),
        ]);
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_bit_identically() {
        for x in [
            0.1f64,
            -0.5,
            2.0,
            1.0 / 3.0,
            1e300,
            -3.9e-12,
            f64::MAX,
            f64::MIN_POSITIVE,
            123_456_789.000_25,
        ] {
            let parsed = parse(&to_string(&x)).unwrap();
            assert_eq!(parsed.as_f64().map(f64::to_bits), Some(x.to_bits()), "{x}");
        }
        assert_eq!(parse(&to_string(&u64::MAX)).unwrap(), Value::UInt(u64::MAX));
        assert_eq!(parse(&to_string(&i64::MIN)).unwrap(), Value::Int(i64::MIN));
        assert_eq!(parse("5e3").unwrap(), Value::Float(5000.0));
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            parse("\"a\\\"b\\\\c\\nd\\u0001\\u00e9\"").unwrap(),
            Value::Str("a\"b\\c\nd\u{1}é".to_owned())
        );
        // Astral-plane characters arrive via surrogate pairs.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_owned())
        );
        // Raw (unescaped) UTF-8 passes through.
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".to_owned()));
    }

    #[test]
    fn from_str_composes_parse_and_deserialize() {
        assert_eq!(from_str::<Vec<u8>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
        assert!(from_str::<Vec<u8>>("{}").is_err());
    }

    #[test]
    fn pathological_nesting_is_an_error_not_a_stack_overflow() {
        // A corrupt outcome file full of `[` bytes must come back as a typed
        // parse error; the recursion bound keeps it off the call stack.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep_ok).is_ok());
        let too_deep = "[".repeat(100_000);
        let err = parse(&too_deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        let deep_objects = "{\"a\":".repeat(100_000);
        assert!(parse(&deep_objects)
            .unwrap_err()
            .to_string()
            .contains("nesting"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_position() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1] x",
            "-",
            "\"\\q\"",
            "nul",
            "{1: 2}",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(err.to_string().contains("JSON parse error"), "{bad}: {err}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        assert_eq!(to_string(&1.25f64), "1.25");
        assert_eq!(to_string(&2.0f64), "2.0");
        assert_eq!(to_string(&-0.5f64), "-0.5");
        assert_eq!(to_string(&1e300f64), "1e300");
    }
}
