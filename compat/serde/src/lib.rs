//! Local stand-in for the `serde` facade so the workspace builds without
//! network access to a crate registry.
//!
//! Unlike the original marker-only shim, this version is *real enough to
//! round-trip*: [`Serialize`] converts a value into the [`Value`] tree data
//! model, [`Deserialize`] converts a [`Value`] tree back, the derive macros
//! (re-exported from the sibling `serde_derive` shim) expand to field-visitor
//! `to_value` / `from_value` implementations over the type's
//! fields/variants, and [`json`] renders any [`Value`] as JSON text and
//! parses JSON text back ([`json::parse`] / [`json::from_str`]). That is the
//! subset the repository needs to write machine-readable figure artifacts
//! and to read sharded sweep outcomes back for merging; the full
//! `Serializer`/`Deserializer` driver machinery of the real `serde` is
//! intentionally out of scope. Swapping this shim for the real `serde` +
//! `serde_json` is a workspace-manifest change plus replacing
//! `Serialize::to_value` / `Deserialize::from_value` call sites with
//! `serde_json::to_value` / `serde_json::from_value`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod json;
mod ser;
mod value;

pub use de::Deserialize;
pub use ser::Serialize;
pub use value::Value;
