//! Local stand-in for the `serde` facade so the workspace builds without
//! network access to a crate registry.
//!
//! The repository derives `Serialize`/`Deserialize` on its result types as
//! forward-looking metadata but never serializes anything, so the traits here
//! are empty markers and the derives (re-exported from the sibling
//! `serde_derive` shim) expand to nothing. Swapping this shim for the real
//! `serde` is a one-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};
