//! Local stand-in for the `serde` facade so the workspace builds without
//! network access to a crate registry.
//!
//! Unlike the original marker-only shim, this version is *real enough to
//! emit*: [`Serialize`] converts a value into the [`Value`] tree data model,
//! the derive macro (re-exported from the sibling `serde_derive` shim)
//! expands to a field-visitor `to_value` implementation over the type's
//! fields/variants, and [`json`] renders any [`Value`] as JSON text. That is
//! the subset the repository needs to write machine-readable figure
//! artifacts; the full `Serializer`/`Deserializer` driver machinery of the
//! real `serde` is intentionally out of scope. `Deserialize` remains a
//! metadata-only marker derive (nothing in the repository reads artifacts
//! back yet). Swapping this shim for the real `serde` + `serde_json` is a
//! workspace-manifest change plus replacing `Serialize::to_value` call sites
//! with `serde_json::to_value`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod json;
mod ser;
mod value;

pub use ser::Serialize;
pub use value::Value;
