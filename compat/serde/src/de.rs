//! The [`Deserialize`] trait and its implementations for standard types.
//!
//! Deserialization is the inverse of [`Serialize`](crate::Serialize): a
//! [`Value`] tree (usually produced by [`json::parse`](crate::json::parse))
//! is converted back into a Rust value with [`Deserialize::from_value`].
//! The derive macro expands to a field-reader over the same data model the
//! `Serialize` derive writes — named structs from insertion-ordered maps,
//! newtype structs transparently, enums from externally tagged values — so
//! every derived type round-trips: `T::from_value(&t.to_value()) == t`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::rc::Rc;
use std::sync::Arc;

use crate::Value;

/// Why a [`Deserialize::from_value`] (or JSON parse) call failed.
///
/// Carries a human-readable message naming the type and shape mismatch; the
/// reproduce pipeline surfaces it verbatim when an outcome file is malformed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// A shape mismatch: deserializing `ty` found `value` where `expected`
    /// was required.
    pub fn unexpected(ty: &str, expected: &str, value: &Value) -> Self {
        let got = match value {
            Value::Null => "null".to_owned(),
            Value::Bool(_) => "a boolean".to_owned(),
            Value::UInt(n) => format!("integer {n}"),
            Value::Int(n) => format!("integer {n}"),
            Value::Float(x) => format!("number {x}"),
            Value::Str(s) => format!("string {s:?}"),
            Value::Seq(items) => format!("a sequence of {} items", items.len()),
            Value::Map(entries) => format!("a map of {} entries", entries.len()),
        };
        Error::custom(format!("{ty}: expected {expected}, got {got}"))
    }

    /// An unknown externally-tagged enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Error::custom(format!("{ty}: unknown variant `{variant}`"))
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion of a [`Value`] tree back into a Rust value.
///
/// Derivable with `#[derive(Deserialize)]`: the derive expands to the exact
/// inverse of the `Serialize` derive, so derived types round-trip through
/// [`crate::json`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`
    /// (wrong variant kind, missing field, out-of-range number, …).
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Reads one named-struct field: the derive calls this per field.
///
/// # Errors
///
/// Errors if `value` is not a map or lacks `name`.
pub fn field<T: Deserialize>(value: &Value, ty: &str, name: &str) -> Result<T, Error> {
    match value {
        Value::Map(_) => {
            let field = value
                .get(name)
                .ok_or_else(|| Error::custom(format!("{ty}: missing field `{name}`")))?;
            T::from_value(field).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
        }
        other => Err(Error::unexpected(ty, "a map", other)),
    }
}

/// Views `value` as a sequence of exactly `arity` items: the derive calls
/// this for tuple structs and tuple variants.
///
/// # Errors
///
/// Errors on non-sequences and length mismatches.
pub fn elements<'v>(value: &'v Value, ty: &str, arity: usize) -> Result<&'v [Value], Error> {
    match value {
        Value::Seq(items) if items.len() == arity => Ok(items),
        other => Err(Error::unexpected(
            ty,
            &format!("a sequence of {arity} items"),
            other,
        )),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => Some(*n),
                    Value::Int(n) => u64::try_from(*n).ok(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::unexpected(stringify!($t), "an unsigned integer", value))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Int(n) => Some(*n),
                    Value::UInt(n) => i64::try_from(*n).ok(),
                    _ => None,
                };
                n.and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::unexpected(stringify!($t), "a signed integer", value))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            // JSON has no NaN/Infinity: the serializer writes them as null,
            // so null reads back as NaN (the only non-finite survivor).
            Value::Null => Ok(f64::NAN),
            other => other
                .as_f64()
                .ok_or_else(|| Error::unexpected("f64", "a number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", "a boolean", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::unexpected("char", "a one-character string", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::unexpected("String", "a string", other)),
        }
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::unexpected("()", "null", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Rc::new)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Arc::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::unexpected("Vec", "a sequence", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Vec::from_value(value).map(VecDeque::from)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("[T; {N}]: expected {N} items, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+; $arity:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = elements(value, "tuple", $arity)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5; 6)
}

/// Reads map entries from either serialized form: a JSON object (string
/// keys — each key deserialized from a [`Value::Str`]) or a sequence of
/// `[key, value]` pairs (non-string keys).
fn map_pairs<K: Deserialize, V: Deserialize>(
    value: &Value,
    ty: &str,
) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Map(entries) => entries
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_value(&Value::Str(k.clone()))?,
                    V::from_value(v).map_err(|e| Error::custom(format!("{ty}[{k:?}]: {e}")))?,
                ))
            })
            .collect(),
        Value::Seq(items) => items
            .iter()
            .map(|item| {
                let pair = elements(item, ty, 2)?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(Error::unexpected(ty, "a map or sequence of pairs", other)),
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_pairs(value, "HashMap")?.into_iter().collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_pairs(value, "BTreeMap")?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Serialize;

    fn round_trip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(value: T) {
        let back = T::from_value(&value.to_value()).expect("round trip");
        assert_eq!(back, value);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(42u8);
        round_trip(u64::MAX);
        round_trip(-42i16);
        round_trip(i64::MIN);
        round_trip(1.5f64);
        round_trip(true);
        round_trip('x');
        round_trip("hello".to_owned());
        round_trip(());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 2, 3]);
        round_trip(VecDeque::from(vec![1u32, 2]));
        round_trip([7u64; 4]);
        round_trip(Some(5u8));
        round_trip(None::<u8>);
        round_trip((1u8, "a".to_owned(), 2.5f64));
        round_trip(Box::new(9u8));
        let mut hm = HashMap::new();
        hm.insert("k".to_owned(), 3u64);
        round_trip(hm);
        let mut bt = BTreeMap::new();
        bt.insert(7u64, "v".to_owned());
        round_trip(bt);
    }

    #[test]
    fn widening_between_int_variants() {
        assert_eq!(u64::from_value(&Value::Int(7)), Ok(7));
        assert_eq!(i64::from_value(&Value::UInt(7)), Ok(7));
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert_eq!(f64::from_value(&Value::UInt(3)), Ok(3.0));
    }

    #[test]
    fn non_finite_floats_come_back_as_nan() {
        let nan = f64::from_value(&f64::NAN.to_value()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn shape_mismatches_name_the_type() {
        let err = bool::from_value(&Value::UInt(1)).unwrap_err();
        assert!(err.to_string().contains("bool"), "{err}");
        let err = field::<u8>(&Value::Map(vec![]), "Foo", "bar").unwrap_err();
        assert!(err.to_string().contains("missing field `bar`"), "{err}");
        let err = field::<u8>(&Value::Null, "Foo", "bar").unwrap_err();
        assert!(err.to_string().contains("expected a map"), "{err}");
    }

    #[test]
    fn wrong_arity_rejected() {
        let v = vec![1u8, 2].to_value();
        assert!(<[u8; 3]>::from_value(&v).is_err());
        assert!(<(u8, u8, u8)>::from_value(&v).is_err());
    }
}
