//! End-to-end tests of the `#[derive(Serialize)]` expansion over every item
//! shape the workspace uses.

use std::collections::HashMap;

use serde::{Deserialize, Serialize, Value};

#[derive(Serialize, Deserialize)]
struct Named {
    /// Doc comments must be skipped by the field parser.
    count: u64,
    ratio: f64,
    label: String,
    pairs: Vec<(f64, f64)>,
    maybe: Option<usize>,
}

#[derive(Serialize)]
struct Newtype(u32);

#[derive(Serialize)]
struct Pair(u32, String);

#[derive(Serialize)]
struct Unit;

#[derive(Serialize)]
struct Generic<M> {
    meta: M,
    tag: u64,
}

#[derive(Serialize)]
struct Borrowed<'a> {
    label: &'a str,
}

#[derive(Serialize)]
struct Fixed<const N: usize> {
    vals: [u64; N],
}

#[derive(Serialize)]
struct MixedGenerics<'a, T, const N: usize> {
    name: &'a str,
    items: [T; N],
}

#[derive(Serialize)]
struct Bounded<T: Clone + std::fmt::Debug> {
    inner: T,
}

#[derive(Serialize)]
struct LifetimeBounded<'a, T: Clone + 'a> {
    inner: &'a T,
}

#[derive(Serialize)]
enum Mixed {
    Plain,
    Wrapped(u8),
    Coords(u8, u8),
    Config {
        degree: u64,
        #[serde(rename = "ignored-by-shim")]
        zero_latency: bool,
    },
}

#[test]
fn named_struct_serializes_fields_in_order() {
    let v = Named {
        count: 3,
        ratio: 1.5,
        label: "fig".to_owned(),
        pairs: vec![(0.0, 1.0)],
        maybe: None,
    }
    .to_value();
    assert_eq!(
        v.to_json(),
        r#"{"count":3,"ratio":1.5,"label":"fig","pairs":[[0.0,1.0]],"maybe":null}"#
    );
}

#[test]
fn tuple_and_unit_structs() {
    assert_eq!(Newtype(7).to_value(), Value::UInt(7));
    assert_eq!(Pair(7, "x".into()).to_value().to_json(), r#"[7,"x"]"#);
    assert_eq!(Unit.to_value(), Value::Str("Unit".to_owned()));
}

#[test]
fn generic_struct_bounds_its_parameter() {
    let v = Generic {
        meta: "m".to_owned(),
        tag: 9,
    }
    .to_value();
    assert_eq!(v.to_json(), r#"{"meta":"m","tag":9}"#);
}

#[test]
fn lifetime_and_const_generics_are_carried_into_the_impl() {
    let v = Borrowed { label: "b" }.to_value();
    assert_eq!(v.to_json(), r#"{"label":"b"}"#);
    let v = Fixed::<2> { vals: [3, 4] }.to_value();
    assert_eq!(v.to_json(), r#"{"vals":[3,4]}"#);
    let v = MixedGenerics::<'_, bool, 1> {
        name: "m",
        items: [true],
    }
    .to_value();
    assert_eq!(v.to_json(), r#"{"name":"m","items":[true]}"#);
}

#[test]
fn declared_bounds_are_re_stated_on_the_impl() {
    let v = Bounded { inner: 5u8 }.to_value();
    assert_eq!(v.to_json(), r#"{"inner":5}"#);
    let x = 6u8;
    let v = LifetimeBounded { inner: &x }.to_value();
    assert_eq!(v.to_json(), r#"{"inner":6}"#);
}

#[test]
fn enum_variants_are_externally_tagged() {
    assert_eq!(Mixed::Plain.to_value(), Value::Str("Plain".to_owned()));
    assert_eq!(Mixed::Wrapped(3).to_value().to_json(), r#"{"Wrapped":3}"#);
    assert_eq!(
        Mixed::Coords(1, 2).to_value().to_json(),
        r#"{"Coords":[1,2]}"#
    );
    assert_eq!(
        Mixed::Config {
            degree: 2,
            zero_latency: true
        }
        .to_value()
        .to_json(),
        r#"{"Config":{"degree":2,"zero_latency":true}}"#
    );
}

#[test]
fn nested_structures_round_trip_through_json_text() {
    let mut by_name: HashMap<String, Vec<Newtype>> = HashMap::new();
    by_name.insert("b".to_owned(), vec![Newtype(2)]);
    by_name.insert("a".to_owned(), vec![Newtype(1)]);
    // HashMap keys are sorted, so the output is deterministic.
    assert_eq!(by_name.to_value().to_json(), r#"{"a":[1],"b":[2]}"#);
}
