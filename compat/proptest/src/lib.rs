//! Local stand-in for the `proptest` crate so the workspace builds without
//! network access to a crate registry.
//!
//! Implements the subset of the proptest API this repository's property tests
//! use: the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, range and tuple strategies,
//! [`collection::vec`], and `any::<bool>()`. Inputs are drawn uniformly from
//! their strategies with a per-test deterministic seed; there is no shrinking
//! — a failing case panics with the generated inputs available via the
//! assertion message.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    use super::*;

    /// Mirror of `proptest::test_runner::Config` (the parts used here).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG: the seed is derived from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) SmallRng);

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(SmallRng::seed_from_u64(seed))
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );

    /// Types with a canonical "any value" strategy (mirror of
    /// `proptest::arbitrary::Arbitrary`).
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.0.gen_bool(0.5)
        }
    }

    /// Strategy produced by [`any`](super::arbitrary::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T> AnyStrategy<T> {
        pub(crate) fn new() -> Self {
            AnyStrategy(std::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `any::<T>()` and friends.
pub mod arbitrary {
    use super::strategy::{AnyStrategy, Arbitrary};

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::new()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Mirror of `proptest!`: runs each property over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                $body
            }
        }
    )*};
}

/// Mirror of `prop_assert!` (no shrinking: a failure panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirror of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u64..10,
            pair in (0u32..5, any::<bool>()),
            items in crate::collection::vec(0u64..100, 1..20),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 5);
            prop_assert!(!items.is_empty() && items.len() < 20);
            prop_assert!(items.iter().all(|&v| v < 100));
            prop_assert_eq!(items.len() + x as usize, x as usize + items.len());
        }
    }
}
