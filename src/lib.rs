//! SHIFT: Shared History Instruction Fetch for lean-core server processors.
//!
//! This is the umbrella crate of the SHIFT reproduction (Kaynak, Grot,
//! Falsafi — MICRO-46, 2013). It re-exports the individual crates of the
//! workspace under stable module names so that applications, the examples in
//! `examples/`, and the integration tests in `tests/` can depend on a single
//! crate:
//!
//! * [`types`] — addresses, identifiers, cycles.
//! * [`trace`] — synthetic server-workload trace generation (Table I suite).
//! * [`cache`] — L1 caches, MSHRs, and the banked NUCA LLC with the
//!   virtualized-history extensions.
//! * [`noc`] — the 2D-mesh interconnect model.
//! * [`cpu`] — core parameters and the front-end stall timing model.
//! * [`prefetch`] — the paper's contribution: spatial regions, the shared
//!   history buffer, stream address buffers, and the next-line / PIF / SHIFT
//!   prefetchers.
//! * [`metrics`] — area, power, and performance-density models.
//! * [`report`] — machine-readable artifacts: tables, paper-reference
//!   checks, and JSON/CSV/markdown writers.
//! * [`sim`] — the full trace-driven CMP simulator, the parallel sweep
//!   engine ([`sim::RunMatrix`]), and the per-figure experiment drivers.
//!
//! # Quick start
//!
//! ```
//! use shift::sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
//! use shift::trace::{presets, Scale};
//!
//! // A 4-core CMP running the tiny test workload, with and without SHIFT.
//! let options = SimOptions::new(Scale::Test, 42);
//! let baseline = Simulation::standalone(
//!     CmpConfig::micro13(4, PrefetcherConfig::None),
//!     presets::tiny(),
//!     options,
//! )
//! .run();
//! let shift = Simulation::standalone(
//!     CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized()),
//!     presets::tiny(),
//!     options,
//! )
//! .run();
//! assert!(shift.coverage.coverage() > 0.5);
//! assert!(shift.speedup_over(&baseline) > 1.0);
//! ```
//!
//! # Sweeps
//!
//! Multi-run studies — every experiment driver, and anything comparing
//! configurations — declare their runs as a [`sim::RunMatrix`]: duplicate
//! runs (shared baselines above all) are simulated once, and the whole
//! matrix executes in parallel across the host's cores with results
//! bit-identical to a serial sweep:
//!
//! ```
//! use shift::sim::{PrefetcherConfig, RunMatrix};
//! use shift::trace::{presets, Scale};
//!
//! let mut matrix = RunMatrix::new();
//! let workload = presets::tiny();
//! let baseline = matrix.standalone(&workload, PrefetcherConfig::None, 4, Scale::Test, 42);
//! let shift = matrix.standalone(
//!     &workload,
//!     PrefetcherConfig::shift_virtualized(),
//!     4,
//!     Scale::Test,
//!     42,
//! );
//! let outcomes = matrix.execute();
//! assert!(outcomes[shift].speedup_over(&outcomes[baseline]) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use shift_cache as cache;
pub use shift_core as prefetch;
pub use shift_cpu as cpu;
pub use shift_metrics as metrics;
pub use shift_noc as noc;
pub use shift_report as report;
pub use shift_sim as sim;
pub use shift_trace as trace;
pub use shift_types as types;

/// The paper this repository reproduces.
pub const PAPER: &str =
    "Kaynak, Grot, Falsafi: SHIFT — Shared History Instruction Fetch for Lean-Core Server \
     Processors, MICRO-46 (2013)";

#[cfg(test)]
mod tests {
    #[test]
    fn paper_constant_names_the_paper() {
        assert!(super::PAPER.contains("SHIFT"));
        assert!(super::PAPER.contains("MICRO-46"));
    }
}
