//! Compare every prefetcher configuration the paper evaluates (next-line,
//! PIF_2K, PIF_32K, ZeroLat-SHIFT, SHIFT) on one server workload — a small
//! scale version of Figures 7 and 8, built on one shared [`RunMatrix`].
//!
//! Figure 7 (coverage) and Figure 8 (speedup) look at the *same* runs from
//! different angles. Declaring both figures against one matrix means each
//! (workload, prefetcher) simulation — and the shared baseline — executes
//! exactly once, in parallel, and both figures read the memoized results.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use shift::sim::{PrefetcherConfig, RunMatrix};
use shift::trace::{presets, Scale};

fn main() {
    let cores = 8;
    let workload = presets::oltp_db2().scaled_footprint(0.2);
    let (scale, seed) = (Scale::Demo, 7);

    let suite = PrefetcherConfig::figure8_suite();
    let mut matrix = RunMatrix::new();
    let baseline = matrix.standalone(&workload, PrefetcherConfig::None, cores, scale, seed);
    let runs: Vec<_> = suite
        .iter()
        .map(|&p| {
            (
                p.label(),
                matrix.standalone(&workload, p, cores, scale, seed),
            )
        })
        .collect();
    println!(
        "one shared sweep: {} simulations for both figures",
        matrix.len()
    );
    let outcomes = matrix.execute();

    println!();
    println!("--- coverage breakdown (Figure 7, scaled down) ---");
    for (label, handle) in &runs {
        let coverage = outcomes[*handle].coverage;
        println!(
            "  {:<14} covered {:>5.1}%  uncovered {:>5.1}%  overpredicted {:>5.1}%",
            label,
            coverage.coverage() * 100.0,
            (1.0 - coverage.coverage()) * 100.0,
            coverage.overprediction() * 100.0
        );
    }

    println!();
    println!("--- speedups (Figure 8, scaled down) ---");
    for (label, handle) in &runs {
        println!(
            "  {:<14}{:>8.3}x",
            label,
            outcomes[*handle].speedup_over(&outcomes[baseline])
        );
    }
}
