//! Compare every prefetcher configuration the paper evaluates (next-line,
//! PIF_2K, PIF_32K, ZeroLat-SHIFT, SHIFT) on one server workload — a small
//! scale version of Figures 7 and 8.
//!
//! ```text
//! cargo run --release --example prefetcher_shootout
//! ```

use shift::sim::experiments::{coverage_breakdown, speedup_comparison};
use shift::trace::{presets, Scale};

fn main() {
    let cores = 8;
    let workloads = vec![presets::oltp_db2().scaled_footprint(0.2)];

    println!("--- coverage breakdown (Figure 7, scaled down) ---");
    let coverage = coverage_breakdown(&workloads, cores, Scale::Demo, 7);
    print!("{coverage}");

    println!();
    println!("--- speedups (Figure 8, scaled down) ---");
    let speedups = speedup_comparison(&workloads, cores, Scale::Demo, 7);
    print!("{speedups}");
}
