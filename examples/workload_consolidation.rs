//! Workload consolidation (Figure 10, scaled down): two workloads share the
//! CMP, each with its own history generator core and its own LLC-embedded
//! history buffer.
//!
//! ```text
//! cargo run --release --example workload_consolidation
//! ```

use shift::sim::experiments::consolidation;
use shift::sim::PrefetcherConfig;
use shift::trace::{presets, Scale};

fn main() {
    let workloads = vec![
        presets::oltp_oracle()
            .scaled_footprint(0.15)
            .with_region_index(0),
        presets::web_search()
            .scaled_footprint(0.15)
            .with_region_index(1),
    ];
    let result = consolidation(
        &workloads,
        &[
            PrefetcherConfig::next_line(),
            PrefetcherConfig::pif_32k(),
            PrefetcherConfig::shift_virtualized(),
        ],
        8,
        Scale::Demo,
        11,
    );
    println!("{result}");
    println!("Each workload keeps its own shared history in the LLC; SHIFT's benefit");
    println!("is preserved under consolidation, as §5.5 of the paper reports.");
}
