//! A mechanism walkthrough of Figures 4 and 5: how the history generator core
//! folds its retire-order access stream into spatial region records, how the
//! shared history and the LLC-embedded index are updated, and how another
//! core replays the stream after a miss.
//!
//! ```text
//! cargo run --example record_replay_walkthrough
//! ```

use shift::cache::{LlcConfig, NucaLlc};
use shift::prefetch::{InstructionPrefetcher, Shift, ShiftConfig};
use shift::types::{AccessClass, BlockAddr, CoreId};

fn main() {
    let mut llc = NucaLlc::new(LlcConfig::micro13(2));
    let config = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0x40_0000));
    let mut shift = Shift::new(config, 2);

    // The access stream of Figure 4(a): A, A+2, A+3, B, ... with A = 0x1000.
    let a = 0x1000u64;
    let b = 0x2000u64;
    let stream: Vec<u64> = vec![a, a + 2, a + 3, b, b + 1, a + 64, a, a + 2, a + 3, b];

    // Warm the LLC with the instruction blocks so index updates can attach to
    // their tags (in a real system they are resident from earlier demand
    // fetches).
    for &blk in &stream {
        llc.access(BlockAddr::new(blk), AccessClass::Demand);
    }

    println!("== Recording (history generator = core 0) ==");
    let mut out = Vec::new();
    for _ in 0..3 {
        for &blk in &stream {
            shift.on_retire(CoreId::new(0), BlockAddr::new(blk), &mut llc, &mut out);
        }
    }
    println!(
        "spatial region records written : {}",
        shift.records_written()
    );
    println!("index updates sent to LLC tags : {}", shift.index_updates());
    println!(
        "history blocks flushed (CBB)   : {}",
        shift.history_block_writes()
    );
    println!("LLC blocks pinned for history  : {}", llc.pinned_blocks());

    println!();
    println!("== Replay (core 1 misses on the stream head A) ==");
    out.clear();
    shift.on_access(CoreId::new(1), BlockAddr::new(a), false, &mut llc, &mut out);
    println!("prefetch candidates after the miss on A:");
    for cand in &out {
        println!(
            "  block {:#x} (ready after {} extra cycles of history-read latency)",
            cand.block.get(),
            cand.ready_delay
        );
    }
    println!();
    println!(
        "core 1 now predicts A+2: {} (the discontinuity to B is predicted too: {})",
        shift.covers(CoreId::new(1), BlockAddr::new(a + 2)),
        shift.covers(CoreId::new(1), BlockAddr::new(b))
    );
}
