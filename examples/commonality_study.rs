//! The Figure 3 opportunity study: how much of every core's instruction
//! stream falls within temporal streams recorded by a single randomly chosen
//! core.
//!
//! ```text
//! cargo run --release --example commonality_study
//! ```

use shift::sim::experiments::commonality;
use shift::trace::{presets, Scale};

fn main() {
    let workloads = vec![
        presets::oltp_db2().scaled_footprint(0.15),
        presets::web_search().scaled_footprint(0.15),
        presets::media_streaming().scaled_footprint(0.15),
    ];
    let result = commonality(&workloads, 8, Scale::Demo, 3);
    println!("{result}");
    println!("The paper reports >90% commonality for the full-size workloads;");
    println!("the shared structure is what makes one core's history usable by all.");
}
