//! Quickstart: run a lean-core server CMP with and without SHIFT and report
//! the instruction-miss coverage and speedup.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shift::sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift::trace::{presets, Scale};

fn main() {
    // A scaled-down web-frontend workload keeps the example fast while
    // retaining the structure of the full Table I workload.
    let workload = presets::web_frontend().scaled_footprint(0.25);
    let cores = 8;
    let options = SimOptions::new(Scale::Demo, 1);

    println!("workload: {} (~{:.1} KB instruction footprint), {cores} lean-OoO cores",
        workload.name,
        workload.expected_footprint_blocks() * 64.0 / 1024.0);

    let baseline = Simulation::standalone(
        CmpConfig::micro13(cores, PrefetcherConfig::None),
        workload.clone(),
        options,
    )
    .run();
    println!(
        "baseline   : throughput {:.2} IPC (aggregate), L1-I MPKI {:.1}",
        baseline.throughput(),
        baseline.l1i_mpki()
    );

    for prefetcher in [PrefetcherConfig::next_line(), PrefetcherConfig::shift_virtualized()] {
        let run = Simulation::standalone(
            CmpConfig::micro13(cores, prefetcher),
            workload.clone(),
            options,
        )
        .run();
        println!(
            "{:<11}: throughput {:.2} IPC, miss coverage {:.1}%, overprediction {:.1}%, speedup {:.3}x",
            run.prefetcher,
            run.throughput(),
            run.coverage.coverage() * 100.0,
            run.coverage.overprediction() * 100.0,
            run.speedup_over(&baseline)
        );
    }
}
