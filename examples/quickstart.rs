//! Quickstart: run a lean-core server CMP with and without SHIFT and report
//! the instruction-miss coverage and speedup.
//!
//! The three runs are declared as one [`RunMatrix`] sweep, so they execute
//! in parallel across the host's cores and the baseline is keyed (and would
//! be deduplicated) like any other run. The SHIFT run's full result tree is
//! also written as `target/artifacts/quickstart.json` through the report
//! pipeline, the same path every figure artifact takes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shift::report::write_json;
use shift::sim::{Execution, PrefetcherConfig, RunMatrix};
use shift::trace::{presets, Scale};

fn main() {
    // A scaled-down web-frontend workload keeps the example fast while
    // retaining the structure of the full Table I workload.
    let workload = presets::web_frontend().scaled_footprint(0.25);
    let cores = 8;
    let (scale, seed) = (Scale::Demo, 1);

    println!(
        "workload: {} (~{:.1} KB instruction footprint), {cores} lean-OoO cores",
        workload.name,
        workload.expected_footprint_blocks() * 64.0 / 1024.0
    );

    let mut matrix = RunMatrix::new();
    let baseline = matrix.standalone(&workload, PrefetcherConfig::None, cores, scale, seed);
    let contenders: Vec<_> = [
        PrefetcherConfig::next_line(),
        PrefetcherConfig::shift_virtualized(),
    ]
    .into_iter()
    .map(|p| matrix.standalone(&workload, p, cores, scale, seed))
    .collect();

    // One parallel sweep executes all three simulations.
    let outcomes = Execution::new(&matrix)
        .run()
        .expect("in-memory sweep")
        .into_outcomes();

    let base = &outcomes[baseline];
    println!(
        "baseline   : throughput {:.2} IPC (aggregate), L1-I MPKI {:.1}",
        base.throughput(),
        base.l1i_mpki()
    );
    for &handle in &contenders {
        let run = &outcomes[handle];
        println!(
            "{:<11}: throughput {:.2} IPC, miss coverage {:.1}%, overprediction {:.1}%, speedup {:.3}x",
            run.prefetcher,
            run.throughput(),
            run.coverage.coverage() * 100.0,
            run.coverage.overprediction() * 100.0,
            run.speedup_over(base)
        );
    }

    // Publish the SHIFT run as a machine-readable artifact: the serde-derived
    // result tree renders straight to JSON.
    let path = std::path::Path::new("target")
        .join("artifacts")
        .join("quickstart.json");
    let shift_run = &outcomes[*contenders.last().expect("planned two contenders")];
    match write_json(&path, shift_run) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
