//! Property-based tests over the core data structures, spanning crates.

use proptest::prelude::*;
use shift::cache::{CacheConfig, SetAssocCache};
use shift::prefetch::{HistoryBuffer, SpatialRegion, SpatialRegionCompactor};
use shift::types::{Addr, BlockAddr};

proptest! {
    /// Byte address → block → base address round trips to the block-aligned
    /// address, and the offset stays within the block.
    #[test]
    fn addr_block_round_trip(raw in 0u64..(1 << 40)) {
        let addr = Addr::new(raw);
        let block = addr.block();
        prop_assert_eq!(block.base_addr().get(), raw & !63);
        prop_assert!(addr.block_offset() < 64);
        prop_assert_eq!(block.base_addr().block(), block);
    }

    /// Every block emitted by a compactor-produced record was actually present
    /// in the observed stream, and the trigger is the first block of its
    /// region occurrence.
    #[test]
    fn compactor_records_only_observed_blocks(
        raw_blocks in proptest::collection::vec(0u64..5_000, 1..400),
    ) {
        let stream: Vec<BlockAddr> = raw_blocks.iter().copied().map(BlockAddr::new).collect();
        let mut compactor = SpatialRegionCompactor::new(8);
        let mut records = Vec::new();
        for &b in &stream {
            if let Some(r) = compactor.observe(b) {
                records.push(r);
            }
        }
        records.extend(compactor.flush());
        let observed: std::collections::HashSet<BlockAddr> = stream.iter().copied().collect();
        for record in &records {
            for block in record.blocks() {
                prop_assert!(observed.contains(&block),
                    "record encodes block {block} never observed");
            }
            prop_assert!(observed.contains(&record.trigger()));
        }
    }

    /// The number of accesses encoded by all records is bounded by the stream
    /// length (compaction never invents accesses).
    #[test]
    fn compactor_never_inflates_access_count(
        raw_blocks in proptest::collection::vec(0u64..2_000, 1..300),
    ) {
        let mut compactor = SpatialRegionCompactor::new(8);
        let mut encoded = 0u64;
        for &b in &raw_blocks {
            if let Some(r) = compactor.observe(BlockAddr::new(b)) {
                encoded += u64::from(r.accessed_blocks());
            }
        }
        if let Some(r) = compactor.flush() {
            encoded += u64::from(r.accessed_blocks());
        }
        prop_assert!(encoded <= raw_blocks.len() as u64);
    }

    /// A history buffer never reports more records than its capacity and
    /// reading any window returns at most the requested count.
    #[test]
    fn history_buffer_capacity_invariant(
        capacity in 1usize..200,
        appends in 0usize..500,
        read_ptr in 0u32..200,
        read_len in 0usize..64,
    ) {
        let mut history = HistoryBuffer::new(capacity);
        for i in 0..appends {
            let slot = history.append(SpatialRegion::new(BlockAddr::new(i as u64 * 8), 8));
            prop_assert!((slot as usize) < capacity);
        }
        prop_assert!(history.len() <= capacity);
        prop_assert_eq!(history.total_appends(), appends as u64);
        let window = history.read(read_ptr % capacity as u32, read_len);
        prop_assert!(window.len() <= read_len.min(capacity));
    }

    /// A set-associative cache never holds more blocks than its capacity and
    /// a filled block is immediately visible until evicted.
    #[test]
    fn cache_capacity_invariant(
        raw_blocks in proptest::collection::vec(0u64..10_000, 1..500),
    ) {
        let config = CacheConfig::new(4 * 1024, 4, 64, 1);
        let mut cache: SetAssocCache<u8> = SetAssocCache::new(config);
        for &b in &raw_blocks {
            let block = BlockAddr::new(b);
            if cache.access(block).is_miss() {
                cache.fill(block, 0);
            }
            prop_assert!(cache.probe(block), "a just-filled block must be resident");
            prop_assert!(cache.resident_blocks() <= config.capacity_blocks());
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
    }
}
