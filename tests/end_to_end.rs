//! End-to-end integration tests spanning every crate: trace generation →
//! caches → NoC → prefetchers → timing → results.

use shift::sim::{CmpConfig, PrefetcherConfig, SimOptions, Simulation};
use shift::trace::{presets, ConsolidationSpec, Scale};
use shift::types::AccessClass;

fn run(prefetcher: PrefetcherConfig, seed: u64) -> shift::sim::RunResult {
    let config = CmpConfig::micro13(4, prefetcher);
    Simulation::standalone(config, presets::tiny(), SimOptions::new(Scale::Test, seed)).run()
}

#[test]
fn prefetcher_ordering_matches_the_paper() {
    let baseline = run(PrefetcherConfig::None, 5);
    let next_line = run(PrefetcherConfig::next_line(), 5);
    let pif32 = run(PrefetcherConfig::pif_32k(), 5);
    let shift = run(PrefetcherConfig::shift_virtualized(), 5);

    // Coverage ordering: stream prefetchers above next-line, everything above
    // the baseline (which covers nothing).
    assert_eq!(baseline.coverage.covered, 0);
    assert!(pif32.coverage.coverage() > next_line.coverage.coverage() * 0.99);
    assert!(shift.coverage.coverage() > 0.5);

    // Speedup ordering.
    assert!(next_line.speedup_over(&baseline) > 1.0);
    assert!(pif32.speedup_over(&baseline) >= next_line.speedup_over(&baseline) * 0.98);
    assert!(shift.speedup_over(&baseline) > 1.0);
}

#[test]
fn shift_generates_history_traffic_but_pif_does_not() {
    let pif = run(PrefetcherConfig::pif_32k(), 9);
    let shift = run(PrefetcherConfig::shift_virtualized(), 9);
    assert_eq!(pif.llc_traffic.count(AccessClass::HistoryRead), 0);
    assert_eq!(pif.llc_traffic.count(AccessClass::HistoryWrite), 0);
    assert!(shift.llc_traffic.count(AccessClass::HistoryRead) > 0);
    assert!(shift.llc_traffic.count(AccessClass::HistoryWrite) > 0);
    assert!(shift.llc_traffic.count(AccessClass::IndexUpdate) > 0);
    // History traffic stays a modest fraction of demand traffic.
    assert!(shift.llc_overhead_ratio(AccessClass::HistoryRead) < 0.6);
}

#[test]
fn zero_latency_shift_is_at_least_as_fast_as_virtualized_shift() {
    let baseline = run(PrefetcherConfig::None, 13);
    let virt = run(PrefetcherConfig::shift_virtualized(), 13);
    let zero = run(PrefetcherConfig::shift_zero_latency(), 13);
    assert!(zero.speedup_over(&baseline) >= virt.speedup_over(&baseline) * 0.995);
}

#[test]
fn simulation_is_deterministic_for_a_fixed_seed() {
    let a = run(PrefetcherConfig::shift_virtualized(), 21);
    let b = run(PrefetcherConfig::shift_virtualized(), 21);
    assert_eq!(a.coverage, b.coverage);
    assert_eq!(a.total_instructions(), b.total_instructions());
    assert!((a.throughput() - b.throughput()).abs() < 1e-12);
    let c = run(PrefetcherConfig::shift_virtualized(), 22);
    assert_ne!(a.coverage, c.coverage, "different seeds should differ");
}

#[test]
fn consolidated_workloads_keep_disjoint_footprints_and_speed_up() {
    let workloads = vec![
        presets::tiny().with_region_index(0),
        presets::tiny().with_region_index(1),
    ];
    let spec = ConsolidationSpec::even_split(workloads, 4);
    let options = SimOptions::new(Scale::Test, 3);
    let baseline = Simulation::consolidated(
        CmpConfig::micro13(4, PrefetcherConfig::None),
        spec.clone(),
        options,
    )
    .run();
    let shift = Simulation::consolidated(
        CmpConfig::micro13(4, PrefetcherConfig::shift_virtualized()),
        spec,
        options,
    )
    .run();
    assert_eq!(baseline.workloads.len(), 2);
    assert!(shift.coverage.coverage() > 0.4);
    assert!(shift.speedup_over(&baseline) > 1.0);
}

#[test]
fn per_core_results_are_consistent_with_aggregates() {
    let run = run(PrefetcherConfig::pif_2k(), 31);
    let sum_instr: u64 = run.per_core.iter().map(|c| c.instructions).sum();
    assert_eq!(sum_instr, run.total_instructions());
    let covered: u64 = run.per_core.iter().map(|c| c.coverage.covered).sum();
    assert_eq!(covered, run.coverage.covered);
    for core in &run.per_core {
        assert!(core.cycles > 0.0);
        assert!(core.ipc > 0.0);
        assert!(core.l1i.accesses >= core.l1i.misses);
    }
}
