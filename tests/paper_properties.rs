//! Integration tests checking the headline quantitative claims of the paper
//! that do not require full-scale simulation: storage costs, area, and
//! performance-density arithmetic.

use shift::metrics::{AreaModel, PdComparison, PowerModel};
use shift::prefetch::{InstructionPrefetcher, Pif, PifConfig, Shift, ShiftConfig};
use shift::sim::experiments::storage_table;
use shift::types::{BlockAddr, CoreId};

#[test]
fn pif_per_core_storage_is_213_kb_and_0_9_mm2() {
    let pif = Pif::new(PifConfig::pif_32k(), 16);
    let storage = pif.storage(16);
    assert_eq!(storage.per_core_bytes / 1024, 213);
    let area = AreaModel::nm40();
    let per_core = area.prefetcher_mm2_per_core(&storage, 16);
    assert!((per_core - 0.9).abs() < 0.02);
}

#[test]
fn shift_storage_is_roughly_14x_cheaper_than_pif() {
    let table = storage_table(16, 8 * 1024 * 1024 / 64);
    let ratio = table.sram_ratio("PIF_32K", "SHIFT").unwrap();
    assert!((10.0..20.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn shift_history_occupies_2731_llc_lines() {
    let cfg = ShiftConfig::virtualized_micro13(CoreId::new(0), BlockAddr::new(0));
    assert_eq!(cfg.history_llc_blocks(), 2731);
    let shift = Shift::new(cfg, 16);
    let storage = shift.storage(16);
    assert_eq!(storage.llc_tag_bytes / 1024, 240);
    assert!(storage.llc_data_bytes / 1024 >= 170);
}

#[test]
fn figure2_pd_classification_matches_section_2_3() {
    // PIF on a Xeon: 23% speedup for 0.9/25 extra area → PD gain.
    let fat = PdComparison::new(1.0, 25.0, 1.23, 25.9);
    assert!(fat.improves_density());
    // PIF on an A15: 0.9/4.5 = 20% extra area for ~21% speedup → marginal.
    let lean = PdComparison::new(1.0, 4.5, 1.21, 5.4);
    assert!((lean.pd_ratio() - 1.0).abs() < 0.02);
    // PIF on an A8: 0.9/1.3 = 69% extra area for 17% speedup → PD loss.
    let io = PdComparison::new(1.0, 1.3, 1.17, 2.2);
    assert!(!io.improves_density());
}

#[test]
fn power_model_keeps_shift_overhead_under_150_mw() {
    // A generous upper bound on per-interval activity still lands below the
    // paper's 150 mW bound.
    let model = PowerModel::nm40();
    let cycles = 50_000_000u64;
    let breakdown = model.overhead(1_200_000, 3_000_000, 20_000_000, cycles);
    assert!(
        breakdown.total_mw() < 150.0,
        "got {} mW",
        breakdown.total_mw()
    );
}
